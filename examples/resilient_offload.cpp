// Resilient offloading under fault injection (aurora::fault).
//
//   build/examples/resilient_offload [seed] [--nodes N]
//
// With --nodes N (N >= 2) the task set runs on an aurora::net cluster
// instead: the mix piles onto remote VH 1, whose first VE is killed mid-run.
// Self-healing is enabled on the remote nodes, so the gateway's runtime
// respawns the VE, replays its un-acked messages exactly once, and the
// two-level executor keeps the rest of the cluster busy throughout — every
// task completes and the node returns to healthy. Single-node runs (the
// default) keep the pre-cluster fence-and-failover behaviour bit-exactly.
//
// Runs a dependency-laced task set across four simulated Vector Engines and
// kills one of them mid-run through the deterministic fault injector (plus a
// sprinkling of probabilistic message drops and corruptions). The hardened
// runtime detects the death via reply timeouts, fences the dead VE, and the
// scheduler re-routes its queued and un-acked in-flight tasks to the three
// survivors — every submitted task still completes. Because every fault
// decision derives from the seed and virtual time, repeating the same seed
// replays the identical failure and recovery (see docs/FAULTS.md).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fault/fault.hpp"
#include "net/net.hpp"
#include "offload/offload.hpp"
#include "sched/sched.hpp"

namespace off = ham::offload;
namespace sched = aurora::sched;
namespace fault = aurora::fault;
namespace net = aurora::net;

namespace {

constexpr int num_ves = 4;
constexpr int num_tasks = 40;

/// The offloaded kernel. Re-routed tasks may run more than once (the dying VE
/// can get partway through one), so chaos workloads use idempotent kernels;
/// a counter is fine for *observing* execution, just assert >= 1.
void simulate_block(std::int64_t cost_ns, std::uint64_t* executions) {
    aurora::sim::advance(cost_ns);
    ++*executions;
}

/// --nodes N: the same chaos seed on an aurora::net cluster, with healing.
/// Remote VH 1's first VE (global id ves+1) dies mid-run; the gateway's
/// runtime respawns and replays it while work steals spread the backlog, so
/// every task completes and the node ends healthy again.
int run_cluster(std::uint64_t seed, int nodes) {
    constexpr int ves = 2;
    fault::config chaos;
    chaos.enabled = true;
    chaos.seed = seed;
    auto& inj = fault::injector::instance();
    inj.configure(chaos);
    inj.kill_after_messages(ves + 1, 5); // VH 1's VE 1, mid-run

    off::runtime_options opt;
    opt.backend = off::backend_kind::loopback;
    opt.targets.assign(ves, 0);
    opt.reply_timeout_ns = 200'000;
    opt.max_retries = 3;

    std::vector<std::uint64_t> executions(num_tasks, 0);
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(300'000'000'000);

    bool healed = false;
    std::uint64_t completed = 0, steals_remote = 0;
    const int rc = off::run(plat, opt, [&] {
        net::cluster_options copt;
        copt.nodes = nodes;
        copt.ves_per_node = ves;
        copt.remote = opt;
        copt.remote.recovery.enabled = true;
        copt.remote.recovery.backoff_ns = 50'000;
        copt.remote.recovery_streak = 4;
        net::cluster c(plat, copt);
        net::cluster_executor_config cfg;
        cfg.window = 2;
        cfg.remote_steal_threshold = 2;
        net::cluster_executor ex(c, cfg);
        for (int i = 0; i < num_tasks; ++i) {
            // Pile everything onto the node that is about to lose a VE.
            ex.submit(ham::f2f<&simulate_block>(
                          std::int64_t{5'000},
                          &executions[static_cast<std::size_t>(i)]),
                      /*affinity_vh=*/1);
        }
        ex.wait_all();
        completed = ex.stats().completed;
        steals_remote = ex.stats().steals_remote;
        // Promotion off probation needs a streak of clean results; keep the
        // respawned VE busy until it reports fully healthy (bounded by the
        // virtual deadline above).
        std::uint64_t probe_execs = 0;
        for (int i = 0; i < 64; ++i) {
            const off::target_health h = c.engine_health(1, 1);
            if (h == off::target_health::healthy ||
                h == off::target_health::failed) {
                break;
            }
            c.async(1, 1, ham::f2f<&simulate_block>(std::int64_t{1'000},
                                                    &probe_execs))
                .get();
        }
        healed = c.engine_health(1, 1) == off::target_health::healthy;

        std::printf("seed %llu: %llu/%d tasks completed on %d nodes\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(completed), num_tasks,
                    nodes);
        for (int vh = 0; vh < nodes; ++vh) {
            const net::node_status s = c.status(vh);
            std::printf("  VH %d: %-10s (%d healthy, %d recovering, "
                        "%d failed of %d VEs)\n",
                        vh, off::to_string(s.health), s.ves_healthy,
                        s.ves_recovering, s.ves_failed, s.ves_total);
        }
        std::printf("  remote VE epoch after heal: %u, remote steals %llu, "
                    "reroutes %llu\n",
                    static_cast<unsigned>(c.observed_epoch(1, 1)),
                    static_cast<unsigned long long>(steals_remote),
                    static_cast<unsigned long long>(ex.stats().reroutes));
    });

    const auto& stats = inj.stats();
    std::printf("injected: %llu kills, %llu revivals\n",
                static_cast<unsigned long long>(stats.kills),
                static_cast<unsigned long long>(stats.revivals));
    bool ok = rc == 0 && completed == std::uint64_t(num_tasks) &&
              stats.kills == 1 && stats.revivals >= 1 && healed;
    for (const std::uint64_t e : executions) {
        ok = ok && e >= 1;
    }
    inj.reset();
    std::printf("%s\n", ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    std::uint64_t seed = 42;
    int nodes = 1;
    bool seed_set = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
            nodes = std::atoi(argv[++i]);
        } else if (!seed_set) {
            seed = std::strtoull(argv[i], nullptr, 10);
            seed_set = true;
        } else {
            std::fprintf(stderr,
                         "usage: resilient_offload [seed] [--nodes N]\n");
            return 2;
        }
    }
    if (nodes > 1) {
        return run_cluster(seed, nodes);
    }

    // Probabilistic chaos: drops, corruptions, delay spikes — all seeded.
    fault::config chaos;
    chaos.enabled = true;
    chaos.seed = seed;
    chaos.drop_permille = 30;
    chaos.corrupt_permille = 30;
    chaos.delay_permille = 50;
    chaos.delay_ns = 20'000;
    auto& inj = fault::injector::instance();
    inj.configure(chaos);
    // Deterministic death: VE 2 dies while holding its 5th message.
    inj.kill_after_messages(2, 5);

    off::runtime_options opt;
    opt.backend = off::backend_kind::loopback;
    opt.targets.assign(num_ves, 0);
    opt.reply_timeout_ns = 200'000; // 200 us virtual reply window
    opt.max_retries = 3;

    std::vector<std::uint64_t> executions(num_tasks, 0);

    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(300'000'000'000); // recovery must converge

    const int rc = off::run(plat, opt, [&] {
        // Locality placement (no stealing) deals the chains round-robin and
        // keeps them put, so VE 2 is guaranteed to reach its fatal message.
        sched::executor ex{{.policy = sched::placement_policy::locality}};
        std::vector<sched::task_id> ids;
        for (int i = 0; i < num_tasks; ++i) {
            const auto kernel = ham::f2f<&simulate_block>(
                std::int64_t{5'000}, &executions[static_cast<std::size_t>(i)]);
            if (i >= num_ves) {
                // Chains: task i depends on task i-4, so the dead VE's chain
                // links must re-route for its successors to ever run.
                ids.push_back(ex.submit(
                    kernel, {ids[static_cast<std::size_t>(i - num_ves)]}));
            } else {
                ids.push_back(ex.submit(kernel));
            }
        }
        ex.wait_all();

        int completed = 0;
        for (const sched::task_id id : ids) {
            completed += ex.state_of(id) == sched::task_state::done ? 1 : 0;
        }
        off::runtime& rt = *off::runtime::current();
        std::printf("seed %llu: %d/%d tasks completed\n",
                    static_cast<unsigned long long>(seed), completed, num_tasks);
        for (off::node_t n = 1; n <= num_ves; ++n) {
            const auto rs = rt.runtime_stats(n);
            std::printf("  VE %d: %-8s retransmits %llu, corrupt retries %llu, "
                        "completed %llu%s%s\n",
                        n, off::to_string(rs.health),
                        static_cast<unsigned long long>(rs.retransmits),
                        static_cast<unsigned long long>(rs.corrupt_retries),
                        static_cast<unsigned long long>(rs.completed),
                        rs.health == off::target_health::failed ? " — " : "",
                        rs.health == off::target_health::failed
                            ? rt.failure_reason(n).c_str()
                            : "");
        }
        std::printf("  failovers %llu, tasks re-routed %llu\n",
                    static_cast<unsigned long long>(ex.stats().failovers),
                    static_cast<unsigned long long>(ex.stats().tasks_failed_over));

        if (completed != num_tasks) {
            std::printf("FAIL: lost tasks despite failover\n");
            std::exit(1);
        }
        if (rt.health(2) != off::target_health::failed) {
            std::printf("FAIL: VE 2 should have been declared failed\n");
            std::exit(1);
        }
    });

    const auto& stats = inj.stats();
    std::printf("injected: %llu drops, %llu corruptions, %llu delay spikes, "
                "%llu kills\n",
                static_cast<unsigned long long>(stats.drops),
                static_cast<unsigned long long>(stats.corruptions),
                static_cast<unsigned long long>(stats.delay_spikes),
                static_cast<unsigned long long>(stats.kills));
    bool ok = rc == 0 && stats.kills == 1;
    for (const std::uint64_t e : executions) {
        ok = ok && e >= 1; // at-least-once, never zero
    }
    std::printf("%s\n", ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
}
