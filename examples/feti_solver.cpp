// FETI-style domain-decomposition iteration with offloaded dense kernels.
//
//   build/examples/feti_solver [num_ves] [iterations]
//
// Models the use case the paper highlights in its related work (Maly et al.:
// Xeon Phi acceleration of domain decomposition iterations via heterogeneous
// active messages): each subdomain owns a dense local "Schur complement"
// operator; every solver iteration applies all subdomain operators to the
// current interface vector — many medium-sized dense matrix-vector kernels,
// offloaded with one subdomain per Vector Engine slot and load-balanced with
// the host. The iteration is a plain Richardson scheme on a diagonally
// dominant system, so convergence is provable and verifiable.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "offload/offload.hpp"

namespace off = ham::offload;
using off::buffer_ptr;

namespace {

constexpr std::size_t iface = 64; // interface unknowns per subdomain

/// y = S * x for this subdomain's dense operator (both VE-resident);
/// returns the local residual contribution ||x - y||^2.
double apply_schur(buffer_ptr<double> s_op, buffer_ptr<double> x,
                   buffer_ptr<double> y, std::size_t n) {
    std::vector<double> S(n * n), vx(n), vy(n, 0.0);
    s_op.read_block(0, S.data(), n * n);
    x.read_block(0, vx.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            acc += S[i * n + j] * vx[j];
        }
        vy[i] = acc;
    }
    y.write_block(0, vy.data(), n);
    double r = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        r += (vx[i] - vy[i]) * (vx[i] - vy[i]);
    }
    off::compute_hint(2.0 * double(n) * double(n), 8.0 * double(n) * double(n));
    return r;
}
HAM_REGISTER_FUNCTION(apply_schur);

/// Build a contraction operator: row-stochastic-ish with spectral radius < 1.
std::vector<double> make_operator(std::size_t n, unsigned seed) {
    std::vector<double> S(n * n);
    std::uint64_t state = seed * 2654435761u + 12345;
    auto rnd = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return double(state >> 40) / double(1 << 24);
    };
    for (std::size_t i = 0; i < n; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            S[i * n + j] = rnd() / double(n);
            row += S[i * n + j];
        }
        for (std::size_t j = 0; j < n; ++j) {
            S[i * n + j] *= 0.9 / row; // contraction: row sums = 0.9
        }
    }
    return S;
}

} // namespace

int main(int argc, char** argv) {
    const int num_ves = argc > 1 ? std::atoi(argv[1]) : 4;
    const int iterations = argc > 2 ? std::atoi(argv[2]) : 25;

    off::runtime_options opt;
    opt.backend = off::backend_kind::vedma;
    opt.targets.clear();
    for (int i = 0; i < num_ves; ++i) {
        opt.targets.push_back(i);
    }

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, [&]() -> int {
        namespace sim = aurora::sim;
        const std::size_t domains = off::num_nodes() - 1;

        struct subdomain {
            buffer_ptr<double> S, x, y;
        };
        std::vector<subdomain> subs(domains);
        std::vector<std::vector<double>> hosts_x(domains,
                                                 std::vector<double>(iface, 1.0));
        for (std::size_t d = 0; d < domains; ++d) {
            const off::node_t node = off::node_t(d + 1);
            subs[d].S = off::allocate<double>(node, iface * iface);
            subs[d].x = off::allocate<double>(node, iface);
            subs[d].y = off::allocate<double>(node, iface);
            const auto S = make_operator(iface, unsigned(d + 1));
            off::put(S.data(), subs[d].S, S.size()).get();
            off::put(hosts_x[d].data(), subs[d].x, iface).get();
        }

        const sim::time_ns t0 = sim::now();
        double residual = 0.0;
        for (int it = 0; it < iterations; ++it) {
            // Fan the subdomain operators out asynchronously…
            std::vector<off::future<double>> parts;
            parts.reserve(domains);
            for (std::size_t d = 0; d < domains; ++d) {
                parts.push_back(
                    off::async(off::node_t(d + 1),
                               ham::f2f(&apply_schur, subs[d].S, subs[d].x,
                                        subs[d].y, iface)));
            }
            // …and reduce the residual when they land.
            residual = 0.0;
            for (auto& p : parts) {
                residual += p.get();
            }
            // Richardson update x <- S x happens on the VE already (y holds
            // S x); swap the roles of x and y for the next iteration.
            for (auto& s : subs) {
                std::swap(s.x, s.y);
            }
        }
        const sim::time_ns elapsed = sim::now() - t0;

        // With a 0.9-contraction, ||x_k|| ~ 0.9^k: the residual must have
        // fallen by orders of magnitude.
        const bool converged = residual < 1e-1 * double(domains);
        std::printf("feti_solver: %zu subdomains, %d iterations of S*x\n",
                    domains, iterations);
        std::printf("  final residual sum : %.3e  (%s)\n", residual,
                    converged ? "converged" : "NOT converged");
        std::printf("  time per iteration : %s\n",
                    aurora::format_ns(elapsed / iterations).c_str());
        std::printf("  offloads issued    : %d\n", iterations * int(domains));

        for (auto& s : subs) {
            off::free(s.S);
            off::free(s.x);
            off::free(s.y);
        }
        return converged ? 0 : 1;
    });
}
