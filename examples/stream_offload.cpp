// STREAM-style bandwidth demonstration: data movement vs on-device compute.
//
//   build/examples/stream_offload [veo|vedma]
//
// Stages a large array onto a Vector Engine, runs a triad kernel
// (a = b + s*c) on the VE where it enjoys the 1.22 TB/s HBM2 bandwidth, and
// contrasts the transfer cost (PCIe, ~10 GiB/s) with the kernel cost —
// the classic "offload pays off only if compute outweighs transfers" trade
// the paper's Sec. V discusses.
#include <cstdio>
#include <cstring>
#include <vector>

#include "offload/offload.hpp"

namespace off = ham::offload;
using off::buffer_ptr;

namespace {

constexpr std::size_t n = 1u << 20; // 1 Mi doubles = 8 MiB per array

void triad(buffer_ptr<double> a, buffer_ptr<double> b, buffer_ptr<double> c,
           double scalar, std::size_t count, int repetitions) {
    std::vector<double> vb(count), vc(count), va(count);
    b.read_block(0, vb.data(), count);
    c.read_block(0, vc.data(), count);
    for (int r = 0; r < repetitions; ++r) {
        for (std::size_t i = 0; i < count; ++i) {
            va[i] = vb[i] + scalar * vc[i];
        }
        // 2 FLOP and 24 B of HBM2 traffic per element and repetition.
        off::compute_hint(2.0 * double(count), 24.0 * double(count));
    }
    a.write_block(0, va.data(), count);
}
HAM_REGISTER_FUNCTION(triad);

} // namespace

int main(int argc, char** argv) {
    off::runtime_options opt;
    opt.backend = (argc > 1 && std::strcmp(argv[1], "veo") == 0)
                      ? off::backend_kind::veo
                      : off::backend_kind::vedma;

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, []() -> int {
        namespace sim = aurora::sim;
        std::vector<double> b(n, 1.5), c(n, 2.0), a(n, 0.0);

        auto a_t = off::allocate<double>(1, n);
        auto b_t = off::allocate<double>(1, n);
        auto c_t = off::allocate<double>(1, n);

        const sim::time_ns t0 = sim::now();
        off::put(b.data(), b_t, n).get();
        off::put(c.data(), c_t, n).get();
        const sim::time_ns t_up = sim::now();

        constexpr int reps = 100;
        off::sync(1, ham::f2f(&triad, a_t, b_t, c_t, 3.0, n, reps));
        const sim::time_ns t_kernel = sim::now();

        off::get(a_t, a.data(), n).get();
        const sim::time_ns t_down = sim::now();

        bool ok = true;
        for (std::size_t i = 0; i < n; ++i) {
            ok = ok && a[i] == 1.5 + 3.0 * 2.0;
        }

        const double bytes_up = 2.0 * 8.0 * n;
        const double bytes_down = 8.0 * n;
        std::printf("stream_offload: triad over %zu doubles, %d repetitions\n", n,
                    reps);
        std::printf("  upload   : %8s  (%.1f GiB/s over PCIe)\n",
                    aurora::format_ns(t_up - t0).c_str(),
                    aurora::bandwidth_gib_s(std::uint64_t(bytes_up), t_up - t0));
        std::printf("  kernel   : %8s  (%.0f GB/s HBM2 traffic modeled)\n",
                    aurora::format_ns(t_kernel - t_up).c_str(),
                    24.0 * double(n) * reps / double(t_kernel - t_up));
        std::printf("  download : %8s  (%.1f GiB/s over PCIe)\n",
                    aurora::format_ns(t_down - t_kernel).c_str(),
                    aurora::bandwidth_gib_s(std::uint64_t(bytes_down),
                                            t_down - t_kernel));
        std::printf("  verify   : %s\n", ok ? "OK" : "MISMATCH");

        off::free(a_t);
        off::free(b_t);
        off::free(c_t);
        return ok ? 0 : 1;
    });
}
