// 1D heat diffusion with domain decomposition across Vector Engines.
//
//   build/examples/heat_stencil [num_ves] [steps]
//
// The rod is split into contiguous domains, one per VE. Every time step each
// VE applies the explicit three-point stencil to its domain; the host then
// exchanges the halo cells between neighbouring domains with offload::copy()
// ("a direct copy between memory on two offload targets ... orchestrated by
// the host", Table II). The result is verified against a serial host solver.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "offload/offload.hpp"

namespace off = ham::offload;
using off::buffer_ptr;

namespace {

constexpr double alpha = 0.25; // diffusion number (stable for explicit Euler)

/// One stencil step over cells [1, n-2] of a domain with halo cells 0, n-1.
/// Reads from `cur`, writes to `next` (both VE-resident, length n).
void stencil_step(buffer_ptr<double> cur, buffer_ptr<double> next,
                  std::uint64_t n) {
    std::vector<double> u(n);
    cur.read_block(0, u.data(), n);
    std::vector<double> v = u;
    for (std::uint64_t i = 1; i + 1 < n; ++i) {
        v[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
    }
    next.write_block(0, v.data(), n);
    off::compute_hint(4.0 * double(n), 16.0 * double(n));
}
HAM_REGISTER_FUNCTION(stencil_step);

} // namespace

int main(int argc, char** argv) {
    const int num_ves = argc > 1 ? std::atoi(argv[1]) : 4;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 50;
    constexpr std::size_t cells_per_domain = 256;

    off::runtime_options opt;
    opt.backend = off::backend_kind::vedma;
    opt.targets.clear();
    for (int i = 0; i < num_ves; ++i) {
        opt.targets.push_back(i);
    }

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, [&]() -> int {
        const std::size_t domains = off::num_nodes() - 1;
        const std::size_t total = domains * cells_per_domain;
        const std::size_t n = cells_per_domain + 2; // + 2 halo cells

        // Initial condition: a hot spike in the middle of the rod.
        std::vector<double> rod(total, 0.0);
        rod[total / 2] = 1000.0;

        // Per-domain double buffers on the VEs (halo layout: [0] and [n-1]).
        struct domain {
            buffer_ptr<double> cur, next;
        };
        std::vector<domain> doms(domains);
        for (std::size_t d = 0; d < domains; ++d) {
            const off::node_t node = off::node_t(d + 1);
            doms[d].cur = off::allocate<double>(node, n);
            doms[d].next = off::allocate<double>(node, n);
            std::vector<double> init(n, 0.0);
            std::copy(rod.begin() + long(d * cells_per_domain),
                      rod.begin() + long((d + 1) * cells_per_domain),
                      init.begin() + 1);
            off::put(init.data(), doms[d].cur, n).get();
        }

        for (int s = 0; s < steps; ++s) {
            // Halo exchange: interior cell 1 / n-2 of one domain becomes the
            // halo cell n-1 / 0 of its neighbour — direct VE-to-VE copies
            // orchestrated by the host.
            std::vector<off::future<void>> halos;
            for (std::size_t d = 0; d + 1 < domains; ++d) {
                halos.push_back(off::copy(doms[d].cur + (n - 2),
                                          doms[d + 1].cur + 0, 1));
                halos.push_back(off::copy(doms[d + 1].cur + 1,
                                          doms[d].cur + (n - 1), 1));
            }
            for (auto& h : halos) {
                h.get();
            }
            // One stencil step on every domain, in parallel.
            std::vector<off::future<void>> stepped;
            for (std::size_t d = 0; d < domains; ++d) {
                stepped.push_back(off::async(
                    off::node_t(d + 1),
                    ham::f2f(&stencil_step, doms[d].cur, doms[d].next, n)));
            }
            for (auto& f : stepped) {
                f.get();
            }
            for (auto& dom : doms) {
                std::swap(dom.cur, dom.next);
            }
        }

        // Gather and verify against a serial reference.
        std::vector<double> result(total);
        for (std::size_t d = 0; d < domains; ++d) {
            std::vector<double> local(n);
            off::get(doms[d].cur, local.data(), n).get();
            std::copy(local.begin() + 1, local.end() - 1,
                      result.begin() + long(d * cells_per_domain));
        }

        std::vector<double> ref(total, 0.0), tmp(total);
        ref[total / 2] = 1000.0;
        for (int s = 0; s < steps; ++s) {
            tmp = ref;
            for (std::size_t i = 1; i + 1 < total; ++i) {
                tmp[i] = ref[i] + alpha * (ref[i - 1] - 2.0 * ref[i] + ref[i + 1]);
            }
            std::swap(ref, tmp);
        }

        double max_err = 0.0, heat = 0.0;
        for (std::size_t i = 0; i < total; ++i) {
            max_err = std::max(max_err, std::abs(ref[i] - result[i]));
            heat += result[i];
        }

        std::printf("heat_stencil: %zu cells over %zu VEs, %d steps\n", total,
                    domains, steps);
        std::printf("  max abs error vs serial solver: %g\n", max_err);
        std::printf("  total heat (conservation check): %.6f\n", heat);
        std::printf("  virtual time: %s\n",
                    aurora::format_ns(aurora::sim::now()).c_str());

        for (auto& dom : doms) {
            off::free(dom.cur);
            off::free(dom.next);
        }
        return max_err < 1e-9 ? 0 : 1;
    });
}
