// Quickstart: the paper's Fig. 2 example program — offloading the inner
// product of two vectors to a Vector Engine.
//
//   build/examples/quickstart [veo|vedma|loopback]
//
// The structure matches the paper line by line: allocate target memory,
// put() the operands, async() the kernel via f2f(), overlap host work, and
// get() the result through the returned future.
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "offload/offload.hpp"

namespace off = ham::offload;
using off::buffer_ptr;

// The offloaded function: runs on the VE, reading VE-resident buffers.
double inner_product(buffer_ptr<double> a, buffer_ptr<double> b, std::size_t n) {
    double r = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        r += a[i] * b[i];
    }
    // Model the kernel's execution time on the device (2 FLOP and 16 B per
    // element) so the virtual clock reflects Table I throughput.
    off::compute_hint(2.0 * double(n), 16.0 * double(n));
    return r;
}
HAM_REGISTER_FUNCTION(inner_product);

int main(int argc, char** argv) {
    off::runtime_options opt;
    opt.backend = off::backend_kind::vedma;
    if (argc > 1) {
        if (std::strcmp(argv[1], "veo") == 0) opt.backend = off::backend_kind::veo;
        if (std::strcmp(argv[1], "loopback") == 0)
            opt.backend = off::backend_kind::loopback;
    }

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, [] {
        // host memory
        constexpr std::size_t n = 1024;
        std::vector<double> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = double(i) * 0.5;
            b[i] = 2.0;
        }

        // target memory
        const off::node_t target = 1;
        auto a_target = off::allocate<double>(target, n);
        auto b_target = off::allocate<double>(target, n);

        // transfer memory
        off::put(a.data(), a_target, n);
        off::put(b.data(), b_target, n);

        // async offload, returns a future<double>
        auto result = off::async(
            target, ham::f2f(&inner_product, a_target, b_target, n));

        // do something in parallel on the host
        const double host_check =
            std::inner_product(a.begin(), a.end(), b.begin(), 0.0);

        // sync on result future
        const double c = result.get();

        const auto d = off::get_node_descriptor(target);
        std::printf("quickstart: inner product of %zu doubles on %s (%s)\n", n,
                    d.name.c_str(), d.device_type.c_str());
        std::printf("  offloaded result : %.1f\n", c);
        std::printf("  host reference   : %.1f\n", host_check);
        std::printf("  virtual time     : %s\n",
                    aurora::format_ns(aurora::sim::now()).c_str());

        off::free(a_target);
        off::free(b_target);
        return c == host_check ? 0 : 1;
    });
}
