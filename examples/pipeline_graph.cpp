// Diamond task graph on the aurora::sched executor.
//
//   build/examples/pipeline_graph [vedma|veo|loopback]
//
// One host scatter task distributes an array over all eight Vector Engines,
// eight parallel partial-sum kernels (pinned: they dereference their VE's
// buffers) reduce their slice on-card, and one host gather task combines the
// partial results — the scatter -> compute -> reduce pipeline expressed as
// dependencies instead of hand-written future bookkeeping (compare
// matmul_load_balance.cpp's explicit work-queue loop). Self-verifies the sum
// against a serial reference.
#include <cstdio>
#include <cstring>
#include <vector>

#include "offload/offload.hpp"
#include "sched/sched.hpp"

namespace off = ham::offload;
namespace sched = aurora::sched;
using off::buffer_ptr;

namespace {

constexpr std::size_t total_elems = 1 << 14;

/// Everything the host-side pipeline stages touch, by plain pointer (task
/// functors travel as raw bytes, so they carry a pointer to this instead of
/// the vectors themselves).
struct pipeline_state {
    std::vector<std::int64_t> data;
    std::vector<buffer_ptr<std::int64_t>> slices;   // per-VE input slice
    std::vector<buffer_ptr<std::int64_t>> partials; // per-VE 1-element result
    std::size_t chunk = 0;
    std::int64_t result = 0;
};

/// Host stage 1: put every slice onto its VE.
void scatter(pipeline_state* st) {
    for (std::size_t v = 0; v < st->slices.size(); ++v) {
        off::put(st->data.data() + v * st->chunk, st->slices[v], st->chunk)
            .get();
    }
}

/// VE stage: sum the local slice into the local 1-element result buffer.
void partial_sum(buffer_ptr<std::int64_t> in, std::uint64_t n,
                 buffer_ptr<std::int64_t> out) {
    std::vector<std::int64_t> local(n);
    in.read_block(0, local.data(), n);
    std::int64_t s = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        s += local[i];
    }
    out.write_block(0, &s, 1);
    off::compute_hint(double(n), double(n) * 8.0);
}

/// Host stage 2: gather the partial sums.
void reduce(pipeline_state* st) {
    st->result = 0;
    for (const auto& p : st->partials) {
        std::int64_t s = 0;
        off::get(p, &s, 1).get();
        st->result += s;
    }
}

} // namespace

int main(int argc, char** argv) {
    off::runtime_options opt;
    opt.backend = off::backend_kind::vedma;
    if (argc > 1 && std::strcmp(argv[1], "veo") == 0) {
        opt.backend = off::backend_kind::veo;
    } else if (argc > 1 && std::strcmp(argv[1], "loopback") == 0) {
        opt.backend = off::backend_kind::loopback;
    }
    opt.targets = {0, 1, 2, 3, 4, 5, 6, 7};

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, [&]() -> int {
        const std::size_t num_ves = off::num_nodes() - 1;
        pipeline_state st;
        st.chunk = total_elems / num_ves;
        st.data.resize(total_elems);
        for (std::size_t i = 0; i < total_elems; ++i) {
            st.data[i] = std::int64_t(i % 101) - 50;
        }
        for (std::size_t v = 0; v < num_ves; ++v) {
            const auto node = off::node_t(v + 1);
            st.slices.push_back(off::allocate<std::int64_t>(node, st.chunk));
            st.partials.push_back(off::allocate<std::int64_t>(node, 1));
        }

        // The diamond: scatter -> num_ves parallel kernels -> reduce.
        sched::task_graph g;
        const sched::task_id top =
            g.add(ham::f2f<&scatter>(&st), {.affinity = 0});
        std::vector<sched::task_id> mids;
        for (std::size_t v = 0; v < num_ves; ++v) {
            mids.push_back(g.add(
                ham::f2f<&partial_sum>(st.slices[v], std::uint64_t(st.chunk),
                                       st.partials[v]),
                {.affinity = sched::node_t(v + 1), .pinned = true}, {top}));
        }
        (void)g.add_serialized(
            sched::detail::serialize_task(ham::f2f<&reduce>(&st)),
            sched::task_options{.affinity = 0}, mids.data(), mids.size());

        sched::executor ex;
        ex.run(g);

        std::int64_t expected = 0;
        for (const std::int64_t v : st.data) {
            expected += v;
        }

        std::printf("pipeline_graph: %zu-element sum over %zu VEs\n",
                    total_elems, num_ves);
        std::printf("  result %lld, expected %lld\n",
                    static_cast<long long>(st.result),
                    static_cast<long long>(expected));
        std::printf("  tasks completed: %zu (host stages: %llu)\n",
                    ex.trace().size(),
                    static_cast<unsigned long long>(ex.stats().host_tasks));
        std::printf("  virtual time: %s\n",
                    aurora::format_ns(aurora::sim::now()).c_str());

        for (std::size_t v = 0; v < num_ves; ++v) {
            off::free(st.slices[v]);
            off::free(st.partials[v]);
        }
        return st.result == expected && ex.trace().size() == num_ves + 2 ? 0 : 1;
    });
}
