// Diamond task graph on the aurora::sched executor.
//
//   build/examples/pipeline_graph [vedma|veo|loopback] [--nodes N]
//
// With --nodes N (N >= 2) the same scatter -> compute -> reduce diamond runs
// on an aurora::net cluster: the array is sliced over every (VH, VE) engine
// of N nodes, the partial-sum kernels execute on remote VEs reached through
// VH -> VH -> VE routing, and the gather pulls each partial back across the
// interconnect. Single-node runs (the default) are byte-identical to the
// pre-cluster behaviour.
//
// One host scatter task distributes an array over all eight Vector Engines,
// eight parallel partial-sum kernels (pinned: they dereference their VE's
// buffers) reduce their slice on-card, and one host gather task combines the
// partial results — the scatter -> compute -> reduce pipeline expressed as
// dependencies instead of hand-written future bookkeeping (compare
// matmul_load_balance.cpp's explicit work-queue loop). Self-verifies the sum
// against a serial reference.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "net/net.hpp"
#include "offload/offload.hpp"
#include "sched/sched.hpp"

namespace off = ham::offload;
namespace sched = aurora::sched;
namespace net = aurora::net;
using off::buffer_ptr;

namespace {

constexpr std::size_t total_elems = 1 << 14;

/// Everything the host-side pipeline stages touch, by plain pointer (task
/// functors travel as raw bytes, so they carry a pointer to this instead of
/// the vectors themselves).
struct pipeline_state {
    std::vector<std::int64_t> data;
    std::vector<buffer_ptr<std::int64_t>> slices;   // per-VE input slice
    std::vector<buffer_ptr<std::int64_t>> partials; // per-VE 1-element result
    std::size_t chunk = 0;
    std::int64_t result = 0;
};

/// Host stage 1: put every slice onto its VE.
void scatter(pipeline_state* st) {
    for (std::size_t v = 0; v < st->slices.size(); ++v) {
        off::put(st->data.data() + v * st->chunk, st->slices[v], st->chunk)
            .get();
    }
}

/// VE stage: sum the local slice into the local 1-element result buffer.
void partial_sum(buffer_ptr<std::int64_t> in, std::uint64_t n,
                 buffer_ptr<std::int64_t> out) {
    std::vector<std::int64_t> local(n);
    in.read_block(0, local.data(), n);
    std::int64_t s = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        s += local[i];
    }
    out.write_block(0, &s, 1);
    off::compute_hint(double(n), double(n) * 8.0);
}

/// Host stage 2: gather the partial sums.
void reduce(pipeline_state* st) {
    st->result = 0;
    for (const auto& p : st->partials) {
        std::int64_t s = 0;
        off::get(p, &s, 1).get();
        st->result += s;
    }
}

/// --nodes N: the identical diamond over an aurora::net cluster. Slices are
/// dealt engine-major over N nodes x 4 VEs (the last engine absorbs the
/// remainder), computed remotely, and gathered over the links.
int run_cluster_pipeline(off::backend_kind backend, int nodes) {
    constexpr int ves = 4;
    off::runtime_options opt;
    opt.backend = backend;
    opt.targets = {0, 1, 2, 3};
    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, [&]() -> int {
        net::cluster_options copt;
        copt.nodes = nodes;
        copt.ves_per_node = ves;
        net::cluster c(plat, copt);

        const std::size_t engines = std::size_t(nodes) * ves;
        const std::size_t chunk = total_elems / engines;
        std::vector<std::int64_t> data(total_elems);
        for (std::size_t i = 0; i < total_elems; ++i) {
            data[i] = std::int64_t(i % 101) - 50;
        }

        struct engine_slice {
            int vh = 0, ve = 0;
            std::size_t count = 0;
            buffer_ptr<std::int64_t> in, out;
        };
        std::vector<engine_slice> slices;
        std::size_t offset = 0;
        for (int vh = 0; vh < nodes; ++vh) {
            for (int ve = 1; ve <= ves; ++ve) {
                engine_slice s;
                s.vh = vh;
                s.ve = ve;
                s.count = slices.size() + 1 == engines
                              ? total_elems - offset
                              : chunk;
                s.in = c.allocate<std::int64_t>(vh, ve, s.count);
                s.out = c.allocate<std::int64_t>(vh, ve, 1);
                c.put(data.data() + offset, vh, s.in, s.count);
                offset += s.count;
                slices.push_back(s);
            }
        }

        std::vector<off::future<void>> futs;
        futs.reserve(engines);
        for (const engine_slice& s : slices) {
            futs.push_back(c.async(
                s.vh, s.ve,
                ham::f2f<&partial_sum>(s.in, std::uint64_t(s.count), s.out)));
        }
        for (auto& f : futs) {
            f.get();
        }

        std::int64_t result = 0;
        for (const engine_slice& s : slices) {
            std::int64_t partial = 0;
            c.get(s.vh, s.out, &partial, 1);
            result += partial;
        }

        std::int64_t expected = 0;
        for (const std::int64_t v : data) {
            expected += v;
        }
        std::printf("pipeline_graph: %zu-element sum over %d node(s) x %d "
                    "VEs (%s link)\n",
                    total_elems, nodes, ves, c.link().name.c_str());
        std::printf("  result %lld, expected %lld\n",
                    static_cast<long long>(result),
                    static_cast<long long>(expected));
        std::printf("  virtual time: %s\n",
                    aurora::format_ns(aurora::sim::now()).c_str());
        for (const engine_slice& s : slices) {
            c.free(s.vh, s.in);
            c.free(s.vh, s.out);
        }
        return result == expected ? 0 : 1;
    });
}

} // namespace

int main(int argc, char** argv) {
    off::runtime_options opt;
    opt.backend = off::backend_kind::vedma;
    int nodes = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "veo") == 0) {
            opt.backend = off::backend_kind::veo;
        } else if (std::strcmp(argv[i], "loopback") == 0) {
            opt.backend = off::backend_kind::loopback;
        } else if (std::strcmp(argv[i], "vedma") == 0) {
            opt.backend = off::backend_kind::vedma;
        } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
            nodes = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: pipeline_graph [vedma|veo|loopback] "
                         "[--nodes N]\n");
            return 2;
        }
    }
    if (nodes > 1) {
        return run_cluster_pipeline(opt.backend, nodes);
    }
    opt.targets = {0, 1, 2, 3, 4, 5, 6, 7};

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, [&]() -> int {
        const std::size_t num_ves = off::num_nodes() - 1;
        pipeline_state st;
        st.chunk = total_elems / num_ves;
        st.data.resize(total_elems);
        for (std::size_t i = 0; i < total_elems; ++i) {
            st.data[i] = std::int64_t(i % 101) - 50;
        }
        for (std::size_t v = 0; v < num_ves; ++v) {
            const auto node = off::node_t(v + 1);
            st.slices.push_back(off::allocate<std::int64_t>(node, st.chunk));
            st.partials.push_back(off::allocate<std::int64_t>(node, 1));
        }

        // The diamond: scatter -> num_ves parallel kernels -> reduce.
        sched::task_graph g;
        const sched::task_id top =
            g.add(ham::f2f<&scatter>(&st), {.affinity = 0});
        std::vector<sched::task_id> mids;
        for (std::size_t v = 0; v < num_ves; ++v) {
            mids.push_back(g.add(
                ham::f2f<&partial_sum>(st.slices[v], std::uint64_t(st.chunk),
                                       st.partials[v]),
                {.affinity = sched::node_t(v + 1), .pinned = true}, {top}));
        }
        (void)g.add_serialized(
            sched::detail::serialize_task(ham::f2f<&reduce>(&st)),
            sched::task_options{.affinity = 0}, mids.data(), mids.size());

        sched::executor ex;
        ex.run(g);

        std::int64_t expected = 0;
        for (const std::int64_t v : st.data) {
            expected += v;
        }

        std::printf("pipeline_graph: %zu-element sum over %zu VEs\n",
                    total_elems, num_ves);
        std::printf("  result %lld, expected %lld\n",
                    static_cast<long long>(st.result),
                    static_cast<long long>(expected));
        std::printf("  tasks completed: %zu (host stages: %llu)\n",
                    ex.trace().size(),
                    static_cast<unsigned long long>(ex.stats().host_tasks));
        std::printf("  virtual time: %s\n",
                    aurora::format_ns(aurora::sim::now()).c_str());

        for (std::size_t v = 0; v < num_ves; ++v) {
            off::free(st.slices[v]);
            off::free(st.partials[v]);
        }
        return st.result == expected && ex.trace().size() == num_ves + 2 ? 0 : 1;
    });
}
