// Reverse offloading with VHcall (paper Sec. I-B).
//
//   build/examples/reverse_offload
//
// The SX-Aurora's native usage model lets VE programs call *back* to the
// Vector Host with syscall semantics (VHcall). This example runs a native VE
// kernel (no HAM runtime involved — the vendor mechanism itself): the VE
// iterates over a dataset and delegates a host-only service (here: a string
// formatting + "logging" facility standing in for I/O) to a registered VH
// handler.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/platform.hpp"
#include "veo/veo_api.hpp"
#include "veos/native.hpp"

using namespace aurora;

int main() {
    sim::platform plat(sim::platform_config::a300_8());
    veos::veos_system sys(plat);

    std::vector<std::string> host_log;
    int exit_code = 1;

    plat.sim().spawn("VH.main", [&] {
        veo::proc_guard proc(sys, 0);

        // Register the host-side service the VE may call.
        veo::veo_register_vh_handler(
            proc.get(), "log_value",
            [&host_log](const std::vector<std::byte>& in,
                        std::vector<std::byte>& out) -> std::uint64_t {
                double v = 0.0;
                std::memcpy(&v, in.data(), sizeof(v));
                host_log.push_back("VE reported: " + std::to_string(v));
                const std::uint64_t ack = host_log.size();
                out.resize(sizeof(ack));
                std::memcpy(out.data(), &ack, sizeof(ack));
                return 0;
            });

        // Native VE execution: compute partial sums, reverse-offload each
        // checkpoint to the host.
        const sim::time_ns t0 = sim::now();
        veos::run_native(*proc->proc, [&] {
            double acc = 0.0;
            for (int chunk = 0; chunk < 4; ++chunk) {
                for (int i = 0; i < 1000; ++i) {
                    acc += double(chunk * 1000 + i);
                }
                std::vector<std::byte> in(sizeof(acc));
                std::memcpy(in.data(), &acc, sizeof(acc));
                std::vector<std::byte> ack;
                proc->proc->vhcall("log_value", in, ack);
            }
        });
        const sim::time_ns elapsed = sim::now() - t0;

        std::printf("reverse_offload: native VE kernel with 4 VHcalls\n");
        for (const auto& line : host_log) {
            std::printf("  [host log] %s\n", line.c_str());
        }
        std::printf("  VHcall round trips cost ~%s each (syscall semantics)\n",
                    format_ns(plat.costs().vhcall_ns + plat.costs().ve_syscall_ns)
                        .c_str());
        std::printf("  virtual time: %s\n", format_ns(elapsed).c_str());
        exit_code = host_log.size() == 4 ? 0 : 1;
    });
    plat.sim().run();
    return exit_code;
}
