// Dense matrix multiplication with dynamic host/VE load balancing.
//
//   build/examples/matmul_load_balance [num_ves]
//
// Models the domain-decomposition use case the paper cites (Maly et al.:
// "a simple load-balancing strategy to efficiently utilise both the host CPU
// and the available coprocessors"): C = A * B is split into row-blocks, a
// work queue feeds blocks to every Vector Engine (asynchronously, one
// outstanding block per target) and to the host itself, and results are
// verified against a serial reference.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "offload/offload.hpp"

namespace off = ham::offload;
using off::buffer_ptr;

namespace {

constexpr std::size_t N = 96;          // matrix dimension
constexpr std::size_t block_rows = 8;  // rows per work item

/// Multiply rows [row0, row0+rows) of A with B into C (all VE-resident).
void matmul_block(buffer_ptr<double> a, buffer_ptr<double> b,
                  buffer_ptr<double> c, std::size_t n, std::size_t row0,
                  std::size_t rows) {
    std::vector<double> a_rows(rows * n), b_full(n * n), c_rows(rows * n, 0.0);
    a.read_block(row0 * n, a_rows.data(), rows * n);
    b.read_block(0, b_full.data(), n * n);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
            const double aik = a_rows[i * n + k];
            for (std::size_t j = 0; j < n; ++j) {
                c_rows[i * n + j] += aik * b_full[k * n + j];
            }
        }
    }
    c.write_block(row0 * n, c_rows.data(), rows * n);
    off::compute_hint(2.0 * double(rows) * double(n) * double(n),
                      double((rows + n) * n) * 8.0);
}

} // namespace
HAM_REGISTER_FUNCTION(matmul_block);
namespace {

void host_matmul_block(const std::vector<double>& a, const std::vector<double>& b,
                       std::vector<double>& c, std::size_t n, std::size_t row0,
                       std::size_t rows) {
    for (std::size_t i = row0; i < row0 + rows; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
            const double aik = a[i * n + k];
            for (std::size_t j = 0; j < n; ++j) {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    off::compute_hint(2.0 * double(rows) * double(n) * double(n),
                      double((rows + n) * n) * 8.0);
}

} // namespace

int main(int argc, char** argv) {
    const int num_ves = argc > 1 ? std::atoi(argv[1]) : 4;

    off::runtime_options opt;
    opt.backend = off::backend_kind::vedma;
    opt.targets.clear();
    for (int i = 0; i < num_ves; ++i) {
        opt.targets.push_back(i);
    }

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    return off::run(plat, opt, [&]() -> int {
        std::vector<double> a(N * N), b(N * N);
        for (std::size_t i = 0; i < N * N; ++i) {
            a[i] = double(i % 13) * 0.25;
            b[i] = double(i % 7) - 3.0;
        }

        // Deploy A and B to every VE; allocate per-VE result matrices.
        struct ve_state {
            buffer_ptr<double> a, b, c;
            off::future<void> inflight;
            std::size_t row0 = 0, rows = 0;
            bool busy = false;
        };
        std::vector<ve_state> ves(off::num_nodes() - 1);
        for (std::size_t v = 0; v < ves.size(); ++v) {
            const off::node_t node = off::node_t(v + 1);
            ves[v].a = off::allocate<double>(node, N * N);
            ves[v].b = off::allocate<double>(node, N * N);
            ves[v].c = off::allocate<double>(node, N * N);
            off::put(a.data(), ves[v].a, N * N).get();
            off::put(b.data(), ves[v].b, N * N).get();
        }

        std::vector<double> c(N * N, 0.0);
        std::size_t next_row = 0;
        std::size_t ve_blocks = 0, host_blocks = 0;

        // Work-queue loop: hand the next row-block to any idle VE; when all
        // VEs are busy, the host takes a block itself.
        auto collect = [&](ve_state& ve) {
            ve.inflight.get();
            std::vector<double> rows(ve.rows * N);
            off::get(ve.c + ve.row0 * N, rows.data(), ve.rows * N).get();
            std::copy(rows.begin(), rows.end(), c.begin() + long(ve.row0 * N));
            ve.busy = false;
        };

        while (next_row < N) {
            bool dispatched = false;
            for (std::size_t v = 0; v < ves.size() && next_row < N; ++v) {
                ve_state& ve = ves[v];
                if (ve.busy && ve.inflight.test()) {
                    collect(ve);
                }
                if (!ve.busy) {
                    ve.row0 = next_row;
                    ve.rows = std::min(block_rows, N - next_row);
                    next_row += ve.rows;
                    ve.inflight = off::async(
                        off::node_t(v + 1),
                        ham::f2f(&matmul_block, ve.a, ve.b, ve.c, N, ve.row0,
                                 ve.rows));
                    ve.busy = true;
                    ++ve_blocks;
                    dispatched = true;
                }
            }
            if (!dispatched && next_row < N) {
                const std::size_t rows = std::min(block_rows, N - next_row);
                host_matmul_block(a, b, c, N, next_row, rows);
                next_row += rows;
                ++host_blocks;
            }
        }
        for (auto& ve : ves) {
            if (ve.busy) {
                collect(ve);
            }
        }

        // Verify against a serial reference.
        std::vector<double> ref(N * N, 0.0);
        for (std::size_t i = 0; i < N; ++i) {
            for (std::size_t k = 0; k < N; ++k) {
                for (std::size_t j = 0; j < N; ++j) {
                    ref[i * N + j] += a[i * N + k] * b[k * N + j];
                }
            }
        }
        double max_err = 0.0;
        for (std::size_t i = 0; i < N * N; ++i) {
            max_err = std::max(max_err, std::abs(ref[i] - c[i]));
        }

        std::printf("matmul %zux%zu over %zu VE(s) + host:\n", N, N, ves.size());
        std::printf("  blocks: %zu on VEs, %zu on the host\n", ve_blocks,
                    host_blocks);
        std::printf("  max abs error vs serial reference: %g\n", max_err);
        std::printf("  virtual time: %s\n",
                    aurora::format_ns(aurora::sim::now()).c_str());

        for (auto& ve : ves) {
            off::free(ve.a);
            off::free(ve.b);
            off::free(ve.c);
        }
        return max_err == 0.0 ? 0 : 1;
    });
}
