// Shared test scaffolding: run a test body as the simulated VH process.
#pragma once

#include <functional>

#include "sim/platform.hpp"
#include "veos/veos.hpp"

namespace aurora::testing {

/// Spawn `body` as the host process and run the simulation to completion.
inline void run_as_vh(sim::platform& plat, std::function<void()> body) {
    plat.sim().spawn("VH.test", std::move(body));
    plat.sim().run();
}

/// Execute `body` on the VE process's own thread (via its request loop) and
/// wait for completion. Used to test VE-initiated APIs (DMAATB, user DMA,
/// LHM/SHM), which refuse to run anywhere else.
inline void run_on_ve(veos::ve_process& proc, std::function<void()> body) {
    veos::program_image img("libtestbody.so");
    img.add_symbol("body",
                   [b = std::move(body)](veos::ve_call_context&) -> std::uint64_t {
                       b();
                       return 0;
                   });
    const std::uint64_t lib = proc.load_library(img);
    const std::uint64_t sym = proc.resolve_symbol(lib, "body");
    veos::ve_command cmd;
    cmd.req_id = proc.next_req_id();
    cmd.sym = sym;
    proc.queue().push(cmd);
    const veos::ve_completion done = proc.wait_completion(cmd.req_id);
    if (done.exception) {
        throw std::runtime_error("run_on_ve: body raised an exception on the VE");
    }
}

/// Platform + VEOS bundle for substrate tests.
struct aurora_fixture {
    explicit aurora_fixture(
        sim::platform_config cfg = sim::platform_config::test_machine())
        : plat(std::move(cfg)), sys(plat) {}

    void run(std::function<void()> body) { run_as_vh(plat, std::move(body)); }

    sim::platform plat;
    veos::veos_system sys;
};

} // namespace aurora::testing
