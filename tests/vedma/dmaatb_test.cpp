#include "vedma/dmaatb.hpp"

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"

namespace aurora::vedma {
namespace {

using testing::aurora_fixture;
using testing::run_on_ve;

struct DmaatbTest : ::testing::Test {
    aurora_fixture fx;
};

TEST_F(DmaatbTest, RegisterVhAndResolve) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        alignas(8) static std::byte host_buf[256];
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            const std::uint64_t vehva = atb.register_vh(host_buf, 256, 0);
            EXPECT_NE(vehva, 0u);
            EXPECT_EQ(atb.entry_count(), 1u);

            const dma_resolution r = atb.resolve(vehva + 16, 8);
            EXPECT_EQ(r.k, dma_resolution::kind::vh);
            EXPECT_EQ(r.vh_ptr, host_buf + 16);
            EXPECT_EQ(r.vh_socket, 0);
            atb.unregister(vehva);
            EXPECT_EQ(atb.entry_count(), 0u);
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, RegisterVeTranslatesToPhysical) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        run_on_ve(proc, [&] {
            const std::uint64_t va = proc.ve_alloc(64 * KiB);
            dmaatb atb(proc);
            const std::uint64_t vehva = atb.register_ve(va, 64 * KiB);
            const dma_resolution r = atb.resolve(vehva + 100, 8);
            EXPECT_EQ(r.k, dma_resolution::kind::ve);
            EXPECT_EQ(r.ve_paddr,
                      proc.aspace().translate(va).value() + 100);
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, AttachShmByKey) {
    shm_registry shms(fx.plat);
    fx.run([&] {
        const shm_segment& seg =
            shms.create(0xBEEF, 4096, sim::page_size::huge_2m, 0);
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            const std::uint64_t vehva = atb.attach_shm(shms, 0xBEEF);
            const dma_resolution r = atb.resolve(vehva, 4096);
            EXPECT_EQ(r.vh_ptr, seg.addr);
            EXPECT_THROW((void)atb.attach_shm(shms, 0xDEAD), check_error);
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, UnregisteredVehvaFaults) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            EXPECT_THROW((void)atb.resolve(0x800000000000, 8), check_error);
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, RangeCrossingFaults) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        alignas(8) static std::byte host_buf[64];
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            const std::uint64_t vehva = atb.register_vh(host_buf, 64, 0);
            EXPECT_NO_THROW((void)atb.resolve(vehva + 56, 8));
            EXPECT_THROW((void)atb.resolve(vehva + 60, 8), check_error);
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, RegistrationIsVeInitiatedOnly) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        alignas(8) static std::byte host_buf[64];
        dmaatb atb(proc);
        // Called from the VH process — must be rejected.
        EXPECT_THROW((void)atb.register_vh(host_buf, 64, 0), check_error);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, RegistrationChargesSyscallCost) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        alignas(8) static std::byte host_buf[64];
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            const sim::time_ns before = sim::now();
            (void)atb.register_vh(host_buf, 64, 0);
            const auto& cm = proc.plat().costs();
            EXPECT_EQ(sim::now() - before,
                      cm.ve_syscall_ns + cm.dmaatb_register_ns);
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, EntryBudgetEnforced) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        alignas(8) static std::byte host_buf[8 * dmaatb::max_entries + 8];
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            std::vector<std::uint64_t> vehvas;
            for (std::size_t i = 0; i < dmaatb::max_entries; ++i) {
                vehvas.push_back(atb.register_vh(host_buf + 8 * i, 8, 0));
            }
            EXPECT_EQ(atb.entry_count(), dmaatb::max_entries);
            EXPECT_THROW((void)atb.register_vh(
                             host_buf + 8 * dmaatb::max_entries, 8, 0),
                         check_error);
            // Unregistering frees an entry for reuse.
            atb.unregister(vehvas.back());
            EXPECT_NO_THROW((void)atb.register_vh(
                host_buf + 8 * dmaatb::max_entries, 8, 0));
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(DmaatbTest, UnregisterUnknownThrows) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            EXPECT_THROW(atb.unregister(0x42), check_error);
        });
        fx.sys.daemon(0).destroy_process(proc);
    });
}

} // namespace
} // namespace aurora::vedma
