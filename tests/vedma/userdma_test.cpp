#include "vedma/userdma.hpp"

#include <numeric>

#include <cstring>

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"

namespace aurora::vedma {
namespace {

using testing::aurora_fixture;
using testing::run_on_ve;

struct UserDmaTest : ::testing::Test {
    aurora_fixture fx;

    void on_ve(std::function<void(veos::ve_process&)> body) {
        fx.run([&] {
            veos::ve_process& proc = fx.sys.daemon(0).create_process();
            run_on_ve(proc, [&] { body(proc); });
            fx.sys.daemon(0).destroy_process(proc);
        });
    }
};

TEST_F(UserDmaTest, VhToVeRoundTrip) {
    alignas(8) static std::byte host_buf[1024];
    for (int i = 0; i < 1024; ++i) host_buf[i] = std::byte(i & 0xFF);
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t host_vehva = atb.register_vh(host_buf, 1024, 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t ve_vehva = atb.register_ve(va, 1024);

        dma.dma_sync(ve_vehva, host_vehva, 1024); // read from host
        std::vector<std::byte> check(1024);
        proc.mem().read(va, check.data(), 1024);
        EXPECT_EQ(std::memcmp(check.data(), host_buf, 1024), 0);

        // Modify on the VE and write back.
        std::vector<std::byte> rev(1024);
        for (std::size_t i = 0; i < 1024; ++i) rev[i] = std::byte(~unsigned(i) & 0xFFu);
        proc.mem().write(va, rev.data(), 1024);
        dma.dma_sync(host_vehva, ve_vehva, 1024);
        EXPECT_EQ(std::memcmp(host_buf, rev.data(), 1024), 0);
        EXPECT_EQ(dma.transfer_count(), 2u);
    });
}

TEST_F(UserDmaTest, PostPollWaitLifecycle) {
    alignas(8) static std::byte host_buf[256];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t h = atb.register_vh(host_buf, 256, 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t v = atb.register_ve(va, 256);

        ve_dma_handle hd;
        EXPECT_EQ(dma.dma_post(v, h, 256, hd), 0);
        EXPECT_TRUE(hd.in_flight);
        // Immediately after post the transfer is still in flight.
        EXPECT_EQ(dma.dma_poll(hd), 1);
        dma.dma_wait(hd);
        EXPECT_FALSE(hd.in_flight);
        EXPECT_THROW(dma.dma_wait(hd), check_error); // double wait
    });
}

TEST_F(UserDmaTest, SmallTransferLatencyMatchesModel) {
    alignas(8) static std::byte host_buf[8];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t h = atb.register_vh(host_buf, 8, 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t v = atb.register_ve(va, 8);

        const auto& cm = proc.plat().costs();
        const sim::time_ns before = sim::now();
        dma.dma_sync(v, h, 8);
        const sim::duration_ns elapsed = sim::now() - before;
        // post + latency + ~0 transfer time: ~1.25 us.
        EXPECT_NEAR(double(elapsed),
                    double(cm.ve_dma_post_ns + cm.ve_dma_latency_ns), 100.0);
    });
}

TEST_F(UserDmaTest, BandwidthReachesPaperPeaks) {
    // Table IV: user DMA 10.6 GiB/s (VH=>VE) and 11.1 GiB/s (VE=>VH).
    alignas(8) static std::vector<std::byte> host_buf(8 * MiB);
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t h = atb.register_vh(host_buf.data(), 8 * MiB, 0);
        const std::uint64_t va = proc.ve_alloc(8 * MiB);
        const std::uint64_t v = atb.register_ve(va, 8 * MiB);

        sim::time_ns t0 = sim::now();
        dma.dma_sync(v, h, 8 * MiB); // VH => VE
        const auto read_t = sim::now() - t0;
        t0 = sim::now();
        dma.dma_sync(h, v, 8 * MiB); // VE => VH
        const auto write_t = sim::now() - t0;

        EXPECT_NEAR(bandwidth_gib_s(8 * MiB, read_t), 10.6, 0.2);
        EXPECT_NEAR(bandwidth_gib_s(8 * MiB, write_t), 11.1, 0.2);
        EXPECT_LT(write_t, read_t); // VE=>VH is the faster direction
    });
}

TEST_F(UserDmaTest, VeToVeLocalCopy) {
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t va1 = proc.ve_alloc(64 * KiB);
        const std::uint64_t va2 = proc.ve_alloc(64 * KiB);
        const std::uint64_t v1 = atb.register_ve(va1, 4096);
        const std::uint64_t v2 = atb.register_ve(va2, 4096);

        std::vector<std::uint8_t> data(4096);
        std::iota(data.begin(), data.end(), 1);
        proc.mem().write(va1, data.data(), data.size());
        dma.dma_sync(v2, v1, 4096);
        std::vector<std::uint8_t> out(4096);
        proc.mem().read(va2, out.data(), out.size());
        EXPECT_EQ(data, out);
    });
}

TEST_F(UserDmaTest, UnregisteredEndpointFaults) {
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t v = atb.register_ve(va, 256);
        ve_dma_handle hd;
        EXPECT_THROW((void)dma.dma_post(v, 0x800000009999, 64, hd), check_error);
    });
}

TEST_F(UserDmaTest, HandleReuseWhileInFlightRejected) {
    alignas(8) static std::byte host_buf[64];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t h = atb.register_vh(host_buf, 64, 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t v = atb.register_ve(va, 64);
        ve_dma_handle hd;
        EXPECT_EQ(dma.dma_post(v, h, 64, hd), 0);
        EXPECT_THROW((void)dma.dma_post(v, h, 64, hd), check_error);
        dma.dma_wait(hd);
    });
}

TEST_F(UserDmaTest, VhInitiatedDmaRejected) {
    // "There currently is no API for initiating DMA from the VH" (Fig. 8).
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        ve_dma_handle hd;
        EXPECT_THROW((void)dma.dma_post(1, 2, 8, hd), check_error);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(UserDmaTest, UpiCrossingAddsLatency) {
    sim::platform plat(sim::platform_config::a300_8());
    veos::veos_system sys(plat);
    alignas(8) static std::byte host_buf[64];
    testing::run_as_vh(plat, [&] {
        veos::ve_process& proc = sys.daemon(0).create_process();
        run_on_ve(proc, [&] {
            dmaatb atb(proc);
            user_dma_engine dma(atb);
            // Same buffer registered as if on socket 0 (local) and socket 1
            // (across UPI).
            const std::uint64_t local = atb.register_vh(host_buf, 32, 0);
            const std::uint64_t remote = atb.register_vh(host_buf + 32, 32, 1);
            const auto t_local = dma.transfer_time(32, true, 0);
            const auto t_remote = dma.transfer_time(32, true, 1);
            EXPECT_GT(t_remote, t_local);
            EXPECT_LE(t_remote - t_local, 1000); // "up to 1 us" (Sec. V-A)
            atb.unregister(local);
            atb.unregister(remote);
        });
        sys.daemon(0).destroy_process(proc);
    });
}

} // namespace
} // namespace aurora::vedma
