#include "vedma/lhm_shm.hpp"

#include <cstring>

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"

namespace aurora::vedma {
namespace {

using testing::aurora_fixture;
using testing::run_on_ve;

struct LhmShmTest : ::testing::Test {
    aurora_fixture fx;

    void on_ve(std::function<void(veos::ve_process&)> body) {
        fx.run([&] {
            veos::ve_process& proc = fx.sys.daemon(0).create_process();
            run_on_ve(proc, [&] { body(proc); });
            fx.sys.daemon(0).destroy_process(proc);
        });
    }
};

TEST_F(LhmShmTest, Load64ReadsHostWord) {
    alignas(8) static std::uint64_t host_word = 0xFEEDC0DE;
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        const std::uint64_t vehva =
            atb.register_vh(reinterpret_cast<std::byte*>(&host_word), 8, 0);
        EXPECT_EQ(lhm_load64(atb, vehva), 0xFEEDC0DEu);
    });
}

TEST_F(LhmShmTest, Store64WritesHostWord) {
    alignas(8) static std::uint64_t host_word = 0;
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        const std::uint64_t vehva =
            atb.register_vh(reinterpret_cast<std::byte*>(&host_word), 8, 0);
        shm_store64(atb, vehva, 0xABCDEF);
        EXPECT_EQ(host_word, 0xABCDEFu);
    });
}

TEST_F(LhmShmTest, LoadCostIsOnePcieRoundTripPerWord) {
    alignas(8) static std::uint64_t words[4] = {1, 2, 3, 4};
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        const std::uint64_t vehva =
            atb.register_vh(reinterpret_cast<std::byte*>(words), 32, 0);
        const auto& cm = proc.plat().costs();
        const sim::time_ns before = sim::now();
        std::uint64_t out[4];
        lhm_load(atb, vehva, out, 32);
        EXPECT_EQ(sim::now() - before, 4 * cm.lhm_word_ns);
        EXPECT_EQ(out[3], 4u);
    });
}

TEST_F(LhmShmTest, StoresArePipelinedPostedWrites) {
    alignas(8) static std::uint64_t words[8] = {};
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        const std::uint64_t vehva =
            atb.register_vh(reinterpret_cast<std::byte*>(words), 64, 0);
        const auto& cm = proc.plat().costs();
        std::uint64_t src[8] = {10, 11, 12, 13, 14, 15, 16, 17};
        const sim::time_ns before = sim::now();
        shm_store(atb, vehva, src, 64);
        EXPECT_EQ(sim::now() - before, 8 * cm.shm_word_ns);
        EXPECT_EQ(words[7], 17u);
        // SHM issue rate beats the LHM round trip by ~5x (0.06 vs 0.01 GiB/s).
        EXPECT_LT(cm.shm_word_ns * 4, cm.lhm_word_ns);
    });
}

TEST_F(LhmShmTest, SustainedRatesMatchTable4) {
    // Table IV: LHM (VH=>VE) 0.01 GiB/s, SHM (VE=>VH) 0.06 GiB/s.
    static std::vector<std::byte> host_buf(1 * MiB);
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        const std::uint64_t vehva =
            atb.register_vh(host_buf.data(), host_buf.size(), 0);
        std::vector<std::byte> local(1 * MiB);

        sim::time_ns t0 = sim::now();
        lhm_load(atb, vehva, local.data(), 1 * MiB);
        const double lhm_bw = bandwidth_gib_s(1 * MiB, sim::now() - t0);
        t0 = sim::now();
        shm_store(atb, vehva, local.data(), 1 * MiB);
        const double shm_bw = bandwidth_gib_s(1 * MiB, sim::now() - t0);

        EXPECT_NEAR(lhm_bw, 0.012, 0.004);
        EXPECT_NEAR(shm_bw, 0.06, 0.005);
    });
}

TEST_F(LhmShmTest, MisalignedAccessRejected) {
    alignas(8) static std::byte buf[64];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        const std::uint64_t vehva = atb.register_vh(buf, 64, 0);
        EXPECT_THROW((void)lhm_load64(atb, vehva + 4), check_error);
        std::uint64_t w;
        EXPECT_THROW(lhm_load(atb, vehva, &w, 12), check_error);
    });
}

TEST_F(LhmShmTest, VeMemoryTargetRejected) {
    // LHM/SHM only reach *host* memory (paper Sec. IV-A).
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t vehva = atb.register_ve(va, 64);
        EXPECT_THROW((void)lhm_load64(atb, vehva), check_error);
        EXPECT_THROW(shm_store64(atb, vehva, 1), check_error);
    });
}

TEST_F(LhmShmTest, VhInitiatedRejected) {
    fx.run([&] {
        veos::ve_process& proc = fx.sys.daemon(0).create_process();
        dmaatb atb(proc);
        EXPECT_THROW((void)lhm_load64(atb, 0x800000000000), check_error);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST_F(LhmShmTest, CrossoverLhmVsDmaOnlyForSingleWords) {
    // Sec. V-B: LHM beats user DMA only for one or two words.
    const sim::cost_model cm;
    const auto dma_small = cm.ve_dma_post_ns + cm.ve_dma_latency_ns;
    EXPECT_LT(lhm_words_time(cm, 1, false), dma_small);
    EXPECT_GT(lhm_words_time(cm, 3, false), dma_small);
}

TEST_F(LhmShmTest, ShmBeatsDmaForSmallPayloads) {
    // Sec. V-B: SHM outperforms user DMA for small VE=>VH payloads (the
    // paper reports up to 256 B; our calibrated model crosses at ~128 B,
    // documented in EXPERIMENTS.md).
    const sim::cost_model cm;
    const auto dma_small = cm.ve_dma_post_ns + cm.ve_dma_latency_ns;
    EXPECT_LT(shm_words_time(cm, 8, false), dma_small);   // 64 B
    EXPECT_GT(shm_words_time(cm, 64, false), dma_small);  // 512 B
}

} // namespace
} // namespace aurora::vedma
