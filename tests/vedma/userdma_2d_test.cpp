// Strided (2D) user DMA transfers.
#include <cstring>
#include <numeric>

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"
#include "vedma/userdma.hpp"

namespace aurora::vedma {
namespace {

using testing::aurora_fixture;
using testing::run_on_ve;

struct UserDma2dTest : ::testing::Test {
    aurora_fixture fx;

    void on_ve(std::function<void(veos::ve_process&)> body) {
        fx.run([&] {
            veos::ve_process& proc = fx.sys.daemon(0).create_process();
            run_on_ve(proc, [&] { body(proc); });
            fx.sys.daemon(0).destroy_process(proc);
        });
    }
};

TEST_F(UserDma2dTest, GatherSubMatrixFromHost) {
    // An 8x8 double matrix on the host; DMA a 4x4 sub-matrix (rows 2-5,
    // cols 2-5) into a dense VE buffer.
    alignas(8) static double host_mat[64];
    for (int i = 0; i < 64; ++i) host_mat[i] = double(i);

    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t hh =
            atb.register_vh(reinterpret_cast<std::byte*>(host_mat),
                            sizeof(host_mat), 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t vv = atb.register_ve(va, 4 * 4 * 8);

        // src: start at (2,2), stride = one matrix row; dst: dense rows.
        dma.dma_sync_2d(vv, 4 * 8, hh + (2 * 8 + 2) * 8, 8 * 8, 4 * 8, 4);

        double sub[16];
        proc.mem().read(va, sub, sizeof(sub));
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                EXPECT_DOUBLE_EQ(sub[r * 4 + c], double((r + 2) * 8 + (c + 2)));
            }
        }
    });
}

TEST_F(UserDma2dTest, ScatterToHost) {
    alignas(8) static std::uint64_t host_buf[32] = {};
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t hh =
            atb.register_vh(reinterpret_cast<std::byte*>(host_buf),
                            sizeof(host_buf), 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t vv = atb.register_ve(va, 8 * 8);
        std::uint64_t dense[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        proc.mem().write(va, dense, sizeof(dense));

        // Scatter pairs of words to every fourth slot on the host.
        dma.dma_sync_2d(hh, 4 * 8, vv, 2 * 8, 2 * 8, 4);
        EXPECT_EQ(host_buf[0], 1u);
        EXPECT_EQ(host_buf[1], 2u);
        EXPECT_EQ(host_buf[4], 3u);
        EXPECT_EQ(host_buf[5], 4u);
        EXPECT_EQ(host_buf[8], 5u);
        EXPECT_EQ(host_buf[12], 7u);
        EXPECT_EQ(host_buf[2], 0u); // untouched gap
    });
}

TEST_F(UserDma2dTest, DescriptorChainCostsScaleWithCount) {
    alignas(8) static std::byte host_buf[4096];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t hh = atb.register_vh(host_buf, sizeof(host_buf), 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t vv = atb.register_ve(va, 4096);
        const auto& cm = proc.plat().costs();

        auto timed = [&](std::uint64_t blocks) {
            const sim::time_ns t0 = sim::now();
            dma.dma_sync_2d(vv, 64, hh, 64, 64, blocks);
            return sim::now() - t0;
        };
        const auto t16 = timed(16);
        const auto t64 = timed(64);
        // Same per-descriptor surcharge, proportional block counts.
        EXPECT_GT(t64, t16);
        EXPECT_NEAR(double(t64 - t16),
                    double(48 * cm.ve_dma_desc_chain_ns +
                           sim::transfer_ns(48 * 64, cm.ve_dma_read_gib)),
                    200.0);
    });
}

TEST_F(UserDma2dTest, OverlappingBlocksRejected) {
    alignas(8) static std::byte host_buf[1024];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t hh = atb.register_vh(host_buf, sizeof(host_buf), 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t vv = atb.register_ve(va, 1024);
        ve_dma_handle h;
        // stride (32) < block_len (64): blocks overlap.
        EXPECT_THROW((void)dma.dma_post_2d(vv, 32, hh, 64, 64, 4, h),
                     check_error);
    });
}

TEST_F(UserDma2dTest, ZeroBlocksIsNoop) {
    alignas(8) static std::byte host_buf[64];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        const std::uint64_t hh = atb.register_vh(host_buf, sizeof(host_buf), 0);
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t vv = atb.register_ve(va, 64);
        const sim::time_ns t0 = sim::now();
        dma.dma_sync_2d(vv, 64, hh, 64, 64, 0);
        EXPECT_EQ(sim::now(), t0);
    });
}

TEST_F(UserDma2dTest, OutOfRangeBlockFaults) {
    alignas(8) static std::byte host_buf[128];
    on_ve([&](veos::ve_process& proc) {
        dmaatb atb(proc);
        user_dma_engine dma(atb);
        // Register the VE range first so the host registration is the last
        // VEHVA window — overrunning it cannot land in a neighbouring entry.
        const std::uint64_t va = proc.ve_alloc(64 * KiB);
        const std::uint64_t vv = atb.register_ve(va, 4096);
        const std::uint64_t hh = atb.register_vh(host_buf, sizeof(host_buf), 0);
        ve_dma_handle h;
        // Third block runs past the 128 B host registration.
        EXPECT_THROW((void)dma.dma_post_2d(vv, 64, hh, 64, 64, 3, h),
                     check_error);
    });
}

} // namespace
} // namespace aurora::vedma
