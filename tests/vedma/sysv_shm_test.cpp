#include "vedma/sysv_shm.hpp"

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"

namespace aurora::vedma {
namespace {

using testing::aurora_fixture;

TEST(SysvShm, CreateFindDestroy) {
    aurora_fixture fx;
    shm_registry shms(fx.plat);
    fx.run([&] {
        const shm_segment& seg =
            shms.create(0x1234, 4096, sim::page_size::huge_2m, 0);
        EXPECT_EQ(seg.key, 0x1234);
        EXPECT_EQ(seg.len, 4096u);
        EXPECT_NE(seg.addr, nullptr);
        EXPECT_EQ(shms.find(0x1234), &seg);
        EXPECT_EQ(shms.find(0x9999), nullptr);
        shms.destroy(0x1234);
        EXPECT_EQ(shms.find(0x1234), nullptr);
        EXPECT_THROW(shms.destroy(0x1234), check_error);
    });
}

TEST(SysvShm, DuplicateKeyRejected) {
    aurora_fixture fx;
    shm_registry shms(fx.plat);
    fx.run([&] {
        shms.create(1, 64, sim::page_size::huge_2m, 0);
        EXPECT_THROW(shms.create(1, 64, sim::page_size::huge_2m, 0), check_error);
    });
}

TEST(SysvShm, SegmentRegisteredWithPageSize) {
    aurora_fixture fx;
    shm_registry shms(fx.plat);
    fx.run([&] {
        const shm_segment& seg =
            shms.create(7, 1 * MiB, sim::page_size::huge_2m, 0);
        EXPECT_EQ(fx.plat.vh_pages().lookup(seg.addr), sim::page_size::huge_2m);
        EXPECT_EQ(fx.plat.vh_pages().lookup(seg.addr + seg.len - 1),
                  sim::page_size::huge_2m);
    });
}

TEST(SysvShm, MemoryZeroInitialised) {
    aurora_fixture fx;
    shm_registry shms(fx.plat);
    fx.run([&] {
        const shm_segment& seg = shms.create(2, 256, sim::page_size::huge_2m, 0);
        for (std::uint64_t i = 0; i < seg.len; ++i) {
            EXPECT_EQ(std::to_integer<int>(seg.addr[i]), 0);
        }
    });
}

TEST(SysvShm, SetupChargesTime) {
    aurora_fixture fx;
    shm_registry shms(fx.plat);
    fx.run([&] {
        const sim::time_ns before = sim::now();
        shms.create(3, 4096, sim::page_size::huge_2m, 0);
        EXPECT_EQ(sim::now() - before, fx.plat.costs().sysv_shm_setup_ns);
    });
}

TEST(SysvShm, InvalidParametersRejected) {
    aurora_fixture fx;
    shm_registry shms(fx.plat);
    fx.run([&] {
        EXPECT_THROW(shms.create(4, 0, sim::page_size::huge_2m, 0), check_error);
        EXPECT_THROW(shms.create(5, 64, sim::page_size::huge_2m, 7), check_error);
    });
}

} // namespace
} // namespace aurora::vedma
