// aurora::mem::arena — property suite: split/coalesce round-trips, bin reuse
// under a seeded random workload, clean OOM behaviour, and the two teardown
// paths (release_all vs abandon).
#include "mem/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace aurora::mem {
namespace {

/// Deterministic generator (the repo-wide convention; no std::random_device).
struct splitmix64 {
    std::uint64_t s;
    explicit splitmix64(std::uint64_t seed) : s(seed) {}
    std::uint64_t next() {
        s += 0x9E3779B97f4A7C15ULL;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }
};

arena_options opts(std::uint64_t initial, std::uint64_t max) {
    arena_options o;
    o.initial_region_bytes = initial;
    o.max_region_bytes = max;
    return o;
}

/// In-memory region source: hands out disjoint address ranges, tracks what is
/// outstanding, and can be capped to force OOM.
class fake_source final : public region_source {
public:
    explicit fake_source(std::uint64_t cap_bytes = 0) : cap_(cap_bytes) {}

    std::uint64_t alloc_region(std::uint64_t bytes) override {
        if (cap_ != 0 && outstanding_bytes_ + bytes > cap_) {
            return 0;
        }
        const std::uint64_t base = next_;
        next_ += bytes + (1ULL << 30); // leave a gap: regions never touch
        live_[base] = bytes;
        outstanding_bytes_ += bytes;
        ++allocs_;
        return base;
    }

    void free_region(std::uint64_t addr, std::uint64_t bytes) override {
        auto it = live_.find(addr);
        ASSERT_NE(it, live_.end()) << "free of unknown region";
        EXPECT_EQ(it->second, bytes);
        outstanding_bytes_ -= it->second;
        live_.erase(it);
        ++frees_;
    }

    std::map<std::uint64_t, std::uint64_t> live_;
    std::uint64_t next_ = 0x7000000000ULL;
    std::uint64_t cap_;
    std::uint64_t outstanding_bytes_ = 0;
    int allocs_ = 0;
    int frees_ = 0;
};

TEST(Arena, SplitAndCoalesceRoundTrip) {
    fake_source src;
    arena a(src, opts(1 << 20, 1 << 20));

    // Three neighbours carved out of one region by splitting.
    const std::uint64_t x = a.allocate(1000);
    const std::uint64_t y = a.allocate(1000);
    const std::uint64_t z = a.allocate(1000);
    EXPECT_EQ(a.stats().regions, 1u);
    EXPECT_GE(a.stats().splits, 3u);
    EXPECT_EQ(a.allocated_size(x), 1024u); // rounded to the 64 B quantum

    // Free the middle, then both sides: everything must coalesce back into
    // a single free chunk spanning the region.
    EXPECT_TRUE(a.free(y));
    EXPECT_TRUE(a.free(x));
    EXPECT_TRUE(a.free(z));
    const arena_stats st = a.stats();
    EXPECT_EQ(st.bytes_in_use, 0u);
    EXPECT_EQ(st.free_chunks, 1u);
    EXPECT_EQ(st.largest_free_chunk, st.bytes_reserved);
    EXPECT_GE(st.coalesces, 2u);

    // The coalesced chunk serves a request as large as the whole region.
    const std::uint64_t big = a.allocate((1 << 20) - 64);
    EXPECT_NE(big, 0u);
    EXPECT_EQ(a.stats().regions, 1u) << "coalesced space must be reused";
}

TEST(Arena, FreeIsIdempotent) {
    fake_source src;
    arena a(src, {});
    const std::uint64_t x = a.allocate(128);
    EXPECT_TRUE(a.free(x));
    EXPECT_FALSE(a.free(x)) << "second free must be a counted no-op";
    EXPECT_FALSE(a.free(0xDEAD000));
    EXPECT_EQ(a.stats().double_frees, 2u);
    EXPECT_EQ(a.stats().frees, 1u);
}

TEST(Arena, RegionOfReportsTheBackingSegment) {
    fake_source src;
    arena a(src, opts(1 << 16, 1 << 16));
    const std::uint64_t x = a.allocate(4096);
    const auto r = a.region_of(x);
    ASSERT_TRUE(r.has_value());
    EXPECT_LE(r->base, x);
    EXPECT_GE(r->base + r->len, x + 4096);
    EXPECT_EQ(r->len, 1u << 16);
    EXPECT_FALSE(a.region_of(0x12345).has_value());
}

TEST(Arena, OversizeRequestsGetDedicatedRegions) {
    fake_source src;
    arena a(src, opts(1 << 16, 1 << 20));
    const std::uint64_t big = a.allocate(8 << 20); // 8 MiB > 1 MiB cap
    EXPECT_NE(big, 0u);
    EXPECT_EQ(a.stats().oversize_allocs, 1u);
    const std::uint64_t regions_before = a.stats().regions;
    // Freeing a dedicated region hands it straight back to the source.
    EXPECT_TRUE(a.free(big));
    EXPECT_EQ(a.stats().regions, regions_before - 1);
    EXPECT_EQ(src.frees_, 1);
}

TEST(Arena, OomIsACleanCatchableError) {
    fake_source src(/*cap=*/1 << 20);
    arena a(src, opts(1 << 20, 1 << 20));
    const std::uint64_t ok = a.allocate(512 << 10);
    EXPECT_NE(ok, 0u);
    // The next MiB cannot be backed: allocate throws (never aborts),
    // try_allocate returns 0, and the failure is counted.
    EXPECT_THROW(a.allocate(1 << 20), oom_error);
    EXPECT_EQ(a.try_allocate(1 << 20), 0u);
    EXPECT_EQ(a.stats().failed_allocs, 2u);
    // The arena remains fully usable after an OOM.
    const std::uint64_t after = a.allocate(1024);
    EXPECT_NE(after, 0u);
    EXPECT_TRUE(a.free(after));
    EXPECT_TRUE(a.free(ok));
}

TEST(Arena, SeededChurnKeepsAccountsExact) {
    fake_source src;
    arena a(src, opts(64 << 10, 4 << 20));
    splitmix64 rng(0xC0FFEE);
    std::map<std::uint64_t, std::uint64_t> live; // addr -> rounded size
    std::uint64_t model_in_use = 0;

    for (int i = 0; i < 4000; ++i) {
        const bool do_alloc = live.empty() || (rng.next() & 1) == 0;
        if (do_alloc) {
            // Log-uniform sizes, 1 B .. 512 KiB.
            const std::uint64_t bytes = 1ULL << (rng.next() % 20);
            const std::uint64_t addr = a.allocate(bytes);
            ASSERT_NE(addr, 0u);
            ASSERT_TRUE(a.owns(addr));
            ASSERT_EQ(live.count(addr), 0u) << "allocator handed out a live address";
            live[addr] = a.allocated_size(addr);
            model_in_use += live[addr];
        } else {
            auto it = live.begin();
            std::advance(it, rng.next() % live.size());
            model_in_use -= it->second;
            ASSERT_TRUE(a.free(it->first));
            ASSERT_FALSE(a.owns(it->first));
            live.erase(it);
        }
        ASSERT_EQ(a.stats().bytes_in_use, model_in_use);
        ASSERT_EQ(a.stats().live_allocations, live.size());
    }

    // Steady-state churn must reuse freed space: far fewer regions than
    // allocations (the whole point of binned free lists).
    EXPECT_LT(a.stats().regions, 64u);
    for (const auto& [addr, size] : live) {
        EXPECT_TRUE(a.free(addr));
    }
    EXPECT_EQ(a.stats().bytes_in_use, 0u);
    // After freeing everything, every region is one coalesced chunk.
    EXPECT_EQ(a.stats().free_chunks, a.stats().regions);
}

TEST(Arena, ReleaseAllReturnsEveryRegionToTheSource) {
    fake_source src;
    {
        arena a(src, opts(1 << 16, 64 << 20));
        static_cast<void>(a.allocate(1024));
        static_cast<void>(a.allocate(1 << 20)); // forces growth
        EXPECT_GT(src.live_.size(), 0u);
        a.release_all();
        EXPECT_EQ(src.live_.size(), 0u);
        EXPECT_EQ(a.stats().bytes_reserved, 0u);
        EXPECT_EQ(a.stats().bytes_in_use, 0u);
        // Still usable: a fresh allocation grows a fresh region.
        EXPECT_NE(a.allocate(64), 0u);
    }
    // Destruction releases what the post-release_all allocation grew.
    EXPECT_EQ(src.live_.size(), 0u);
}

TEST(Arena, AbandonNeverTouchesTheSource) {
    fake_source src;
    arena a(src, opts(1 << 16, 64 << 20));
    static_cast<void>(a.allocate(1024));
    const int frees_before = src.frees_;
    a.abandon();
    EXPECT_EQ(src.frees_, frees_before)
        << "abandon must not free regions of a dead incarnation";
    EXPECT_EQ(a.stats().bytes_in_use, 0u);
    EXPECT_EQ(a.stats().bytes_reserved, 0u);
    // The source still thinks the regions are outstanding — that is the
    // epoch-teardown contract (the memory died with the process).
    EXPECT_GT(src.live_.size(), 0u);
    src.live_.clear(); // keep the fake's destructor assertions quiet
    // A fresh allocation after abandon grows fresh regions.
    EXPECT_NE(a.allocate(64), 0u);
}

TEST(Arena, ZeroByteAllocationRoundsUpToAQuantum) {
    fake_source src;
    arena a(src, {});
    const std::uint64_t x = a.allocate(0);
    EXPECT_NE(x, 0u);
    EXPECT_EQ(a.allocated_size(x), 64u);
    EXPECT_TRUE(a.free(x));
}

} // namespace
} // namespace aurora::mem
