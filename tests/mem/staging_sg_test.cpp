// aurora::mem — staging_pool round-robin/exhaustion semantics and sg_list
// split/coalesce behaviour (the descriptor shape the VE channel turns into
// one dma_post_2d chain plus an optional tail post).
#include "mem/sg.hpp"
#include "mem/staging_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

namespace aurora::mem {
namespace {

TEST(StagingPool, HandsOutEveryChunkThenExhausts) {
    staging_pool p(4096, 3);
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.chunk_bytes(), 4096u);

    std::set<std::byte*> seen;
    std::vector<staging_pool::buffer> held;
    for (int i = 0; i < 3; ++i) {
        auto b = p.try_acquire();
        ASSERT_TRUE(b.has_value());
        EXPECT_NE(b->data, nullptr);
        EXPECT_EQ(b->bytes, 4096u);
        seen.insert(b->data);
        held.push_back(*b);
    }
    EXPECT_EQ(seen.size(), 3u) << "chunks must be distinct";
    // All in flight: acquire fails without blocking, and is counted.
    EXPECT_FALSE(p.try_acquire().has_value());
    EXPECT_EQ(p.stats().exhausted, 1u);
    EXPECT_EQ(p.stats().in_use, 3u);

    // Releasing one makes exactly one available again, same backing chunk.
    p.release(held[1]);
    auto again = p.try_acquire();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->data, held[1].data);
    EXPECT_EQ(again->index, held[1].index);
}

TEST(StagingPool, ReleaseIsIdempotentPerChunk) {
    staging_pool p(256, 2);
    auto a = p.try_acquire();
    ASSERT_TRUE(a.has_value());
    p.release(*a);
    p.release(*a); // second release: no-op, must not corrupt accounting
    EXPECT_EQ(p.stats().in_use, 0u);
    EXPECT_TRUE(p.try_acquire().has_value());
    EXPECT_TRUE(p.try_acquire().has_value());
    EXPECT_FALSE(p.try_acquire().has_value());
}

TEST(StagingPool, ChunksAreWritable) {
    staging_pool p(1024, 1);
    auto b = p.try_acquire();
    ASSERT_TRUE(b.has_value());
    std::memset(b->data, 0xAB, b->bytes);
    EXPECT_EQ(std::to_integer<int>(b->data[1023]), 0xAB);
    p.release(*b);
}

TEST(SgList, UnlimitedDescriptorIsASingleEntry) {
    sg_list sg(0);
    sg.add(0x1000, 0x9000, 1 << 20);
    ASSERT_EQ(sg.size(), 1u);
    EXPECT_EQ(sg.entries()[0].src, 0x1000u);
    EXPECT_EQ(sg.entries()[0].dst, 0x9000u);
    EXPECT_EQ(sg.entries()[0].len, std::uint64_t{1} << 20);
}

TEST(SgList, SplitsIntoUniformPrefixPlusTail) {
    // 10 KiB at a 4 KiB descriptor cap: [4K, 4K, 2K]. The VE channel relies
    // on exactly this shape — uniform prefix as one dma_post_2d chain, short
    // tail as one extra post.
    sg_list sg(4096);
    sg.add(0x1000, 0x9000, 10 * 1024);
    ASSERT_EQ(sg.size(), 3u);
    const auto& e = sg.entries();
    EXPECT_EQ(e[0].len, 4096u);
    EXPECT_EQ(e[1].len, 4096u);
    EXPECT_EQ(e[2].len, 2048u);
    // Addresses advance in lockstep on both ends.
    EXPECT_EQ(e[1].src, e[0].src + 4096);
    EXPECT_EQ(e[1].dst, e[0].dst + 4096);
    EXPECT_EQ(e[2].src, e[1].src + 4096);
    EXPECT_EQ(sg.total_bytes(), 10u * 1024);
}

TEST(SgList, ExactMultipleHasNoTail) {
    sg_list sg(4096);
    sg.add(0x0, 0x100000, 3 * 4096);
    ASSERT_EQ(sg.size(), 3u);
    for (const sg_entry& e : sg.entries()) {
        EXPECT_EQ(e.len, 4096u);
    }
}

TEST(SgList, CoalescesContiguousAdds) {
    sg_list sg(0);
    sg.add(0x1000, 0x9000, 256);
    sg.add(0x1100, 0x9100, 256); // contiguous on both ends: merges
    ASSERT_EQ(sg.size(), 1u);
    EXPECT_EQ(sg.entries()[0].len, 512u);

    sg.add(0x5000, 0x9200, 256); // src gap: new entry even though dst chains
    EXPECT_EQ(sg.size(), 2u);
    sg.add(0x5100, 0xF000, 256); // dst gap: new entry even though src chains
    EXPECT_EQ(sg.size(), 3u);
}

TEST(SgList, CoalesceRespectsTheDescriptorCap) {
    sg_list sg(4096);
    sg.add(0x1000, 0x9000, 4096);
    sg.add(0x2000, 0xA000, 4096); // contiguous but a merge would exceed cap
    ASSERT_EQ(sg.size(), 2u);
    EXPECT_EQ(sg.entries()[0].len, 4096u);
    EXPECT_EQ(sg.entries()[1].len, 4096u);
}

TEST(SgList, ClearEmptiesThePlan) {
    sg_list sg(4096);
    sg.add(0x1000, 0x9000, 8192);
    EXPECT_FALSE(sg.empty());
    sg.clear();
    EXPECT_TRUE(sg.empty());
    EXPECT_EQ(sg.total_bytes(), 0u);
}

} // namespace
} // namespace aurora::mem
