// aurora::mem::reg_cache — LRU behaviour is part of the contract: eviction
// order must be deterministic (coldest unpinned first), pinned entries must
// survive arbitrary pressure, and a hit on a too-short cached range must
// re-register. A logging fake registrar records the exact install/remove
// sequence so the tests can assert order, not just counts.
#include "mem/reg_cache.hpp"

#include "mem/arena.hpp" // oom_error

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aurora::mem {
namespace {

class logging_registrar final : public registrar {
public:
    std::uint64_t do_register(std::uint64_t space, std::uint64_t addr,
                              std::uint64_t len) override {
        const std::uint64_t h = next_handle_++;
        live_[h] = {space, addr, len};
        log.push_back("reg(" + std::to_string(space) + "," +
                      std::to_string(addr) + "," + std::to_string(len) + ")");
        return h;
    }

    void do_unregister(std::uint64_t handle) override {
        auto it = live_.find(handle);
        ASSERT_NE(it, live_.end()) << "unregister of unknown handle";
        log.push_back("unreg(" + std::to_string(it->second.addr) + ")");
        live_.erase(it);
    }

    struct mapping {
        std::uint64_t space, addr, len;
    };
    std::map<std::uint64_t, mapping> live_;
    std::uint64_t next_handle_ = 0x100;
    std::vector<std::string> log;
};

TEST(RegCache, HitReturnsCachedHandleWithoutReRegistering) {
    logging_registrar r;
    reg_cache c(r, 8);
    const std::uint64_t h1 = c.lookup(reg_cache::space_ve, 0x1000, 4096);
    const std::uint64_t h2 = c.lookup(reg_cache::space_ve, 0x1000, 4096);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(r.log, std::vector<std::string>{"reg(1,4096,4096)"});
    const reg_cache_stats st = c.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);
}

TEST(RegCache, SameAddressInDifferentSpacesAreDistinctEntries) {
    logging_registrar r;
    reg_cache c(r, 8);
    const std::uint64_t hv = c.lookup(reg_cache::space_vh, 0x2000, 64);
    const std::uint64_t he = c.lookup(reg_cache::space_ve, 0x2000, 64);
    EXPECT_NE(hv, he);
    EXPECT_EQ(c.stats().entries, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(RegCache, EvictionOrderIsDeterministicLru) {
    logging_registrar r;
    reg_cache c(r, 3);
    c.lookup(reg_cache::space_ve, 0xA000, 64); // A
    c.lookup(reg_cache::space_ve, 0xB000, 64); // B
    c.lookup(reg_cache::space_ve, 0xC000, 64); // C  (order cold->hot: A B C)
    c.lookup(reg_cache::space_ve, 0xA000, 64); // touch A (order: B C A)
    r.log.clear();

    // Two inserts over capacity must evict exactly B then C, in that order.
    c.lookup(reg_cache::space_ve, 0xD000, 64);
    c.lookup(reg_cache::space_ve, 0xE000, 64);
    const std::vector<std::string> want{
        "unreg(45056)",  // B = 0xB000
        "reg(1,53248,64)",
        "unreg(49152)",  // C = 0xC000
        "reg(1,57344,64)",
    };
    EXPECT_EQ(r.log, want);
    EXPECT_EQ(c.stats().evictions, 2u);
    EXPECT_EQ(c.stats().entries, 3u);

    // A survived both evictions because it was touched — still a hit.
    const std::uint64_t misses_before = c.stats().misses;
    c.lookup(reg_cache::space_ve, 0xA000, 64);
    EXPECT_EQ(c.stats().misses, misses_before);
}

TEST(RegCache, PinnedEntriesSurviveAnyPressure) {
    logging_registrar r;
    reg_cache c(r, 3);
    const std::uint64_t pinned =
        c.lookup(reg_cache::space_ve, 0xF000, 4096, /*pin=*/true);
    for (std::uint64_t i = 0; i < 32; ++i) {
        c.lookup(reg_cache::space_ve, 0x10000 + i * 0x1000, 64);
    }
    // The pinned segment is still cached — same handle, no re-register.
    const std::uint64_t misses_before = c.stats().misses;
    EXPECT_EQ(c.lookup(reg_cache::space_ve, 0xF000, 4096), pinned);
    EXPECT_EQ(c.stats().misses, misses_before);
    EXPECT_EQ(c.stats().pinned, 1u);

    // Unpinning makes it evictable again.
    c.unpin(reg_cache::space_ve, 0xF000);
    EXPECT_EQ(c.stats().pinned, 0u);
    for (std::uint64_t i = 0; i < 3; ++i) {
        c.lookup(reg_cache::space_ve, 0x90000 + i * 0x1000, 64);
    }
    EXPECT_NE(c.lookup(reg_cache::space_ve, 0xF000, 4096), pinned)
        << "unpinned entry should have been evicted and re-registered";
}

TEST(RegCache, AllPinnedAtCapacityIsACleanError) {
    logging_registrar r;
    reg_cache c(r, 2);
    c.lookup(reg_cache::space_ve, 0x1000, 64, /*pin=*/true);
    c.lookup(reg_cache::space_ve, 0x2000, 64, /*pin=*/true);
    EXPECT_THROW(c.lookup(reg_cache::space_ve, 0x3000, 64), oom_error);
}

TEST(RegCache, ShortCachedRangeReRegistersTheLongerOne) {
    logging_registrar r;
    reg_cache c(r, 8);
    c.lookup(reg_cache::space_ve, 0x1000, 4096);
    r.log.clear();
    // Same base, longer range: the 4 KiB mapping cannot serve 64 KiB.
    c.lookup(reg_cache::space_ve, 0x1000, 64 << 10);
    const std::vector<std::string> want{"unreg(4096)", "reg(1,4096,65536)"};
    EXPECT_EQ(r.log, want);
    EXPECT_EQ(c.stats().reregisters, 1u);
    // A shorter lookup now rides the longer mapping.
    const std::uint64_t misses_before = c.stats().misses;
    c.lookup(reg_cache::space_ve, 0x1000, 4096);
    EXPECT_EQ(c.stats().misses, misses_before);
}

TEST(RegCache, InvalidateUnregistersOneSegment) {
    logging_registrar r;
    reg_cache c(r, 8);
    c.lookup(reg_cache::space_ve, 0x1000, 64);
    c.lookup(reg_cache::space_ve, 0x2000, 64);
    c.invalidate(reg_cache::space_ve, 0x1000);
    EXPECT_EQ(c.stats().entries, 1u);
    EXPECT_EQ(r.live_.size(), 1u);
    c.invalidate(reg_cache::space_ve, 0x7777); // absent: no-op
    EXPECT_EQ(c.stats().entries, 1u);
}

TEST(RegCache, ClearUnregistersButDropForgetsSilently) {
    logging_registrar r;
    {
        reg_cache c(r, 8);
        c.lookup(reg_cache::space_ve, 0x1000, 64);
        c.lookup(reg_cache::space_ve, 0x2000, 64, /*pin=*/true);
        c.clear(); // polite: both mappings removed, pinned or not
        EXPECT_EQ(r.live_.size(), 0u);
        EXPECT_EQ(c.stats().entries, 0u);

        c.lookup(reg_cache::space_ve, 0x3000, 64);
        c.drop(); // epoch: table died with the target — no unregister calls
        EXPECT_EQ(c.stats().entries, 0u);
        EXPECT_EQ(r.live_.size(), 1u)
            << "drop must not touch the dead incarnation's registrar";
        r.live_.clear();
    }
    // Destructor on an already-empty cache performs no extra unregisters.
    EXPECT_EQ(r.live_.size(), 0u);
}

TEST(RegCache, DestructorUnregistersLiveEntries) {
    logging_registrar r;
    {
        reg_cache c(r, 8);
        c.lookup(reg_cache::space_ve, 0x1000, 64);
        c.lookup(reg_cache::space_vh, 0x2000, 64);
        EXPECT_EQ(r.live_.size(), 2u);
    }
    EXPECT_EQ(r.live_.size(), 0u);
}

} // namespace
} // namespace aurora::mem
