// Common harness for the admission tests: run a body inside offload::run()
// with loopback targets (reusing the scheduler harness), plus config helpers
// shared by the suite.
#pragma once

#include <cstdint>

#include "admit/server.hpp"
#include "tests/sched/sched_test_common.hpp"

namespace aurora::admit {

namespace tk = aurora::sched::testkernels;

using aurora::sched::run_sched;

/// Small serving config: tight capacity and an explicit dispatch window so
/// tests exercise session queueing (not just pass-through dispatch).
inline server::config small_cfg(std::size_t capacity, std::size_t window) {
    server::config cfg;
    cfg.capacity = capacity;
    cfg.dispatch_window = window;
    return cfg;
}

/// Occupy the dispatch window with one long-running request so subsequently
/// admitted work stays queued in its session (deterministic queue buildup).
inline request occupy_window(server& srv, std::int64_t cost_ns,
                             std::uint64_t* counter) {
    session_options o;
    o.tenant = "prefill";
    o.cls = qos_class::latency;
    const session_id sid = srv.open(o);
    return srv.submit(sid, ham::f2f<&tk::cost_kernel>(cost_ns, counter));
}

} // namespace aurora::admit
