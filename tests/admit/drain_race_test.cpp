// Satellite robustness coverage: runtime::drain() racing concurrent session
// open/close and in-flight deadline expiry. The invariants under test are
// the admission contract's hard ones — no hangs (every loop below runs under
// a virtual-time deadline) and no double settlement (every admitted request
// settles exactly once, into exactly one outcome bucket).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "tests/admit/admit_test_common.hpp"

namespace aurora::admit {
namespace {

using ham::offload::admission_error;

/// run_sched with a virtual-time deadline: a stalled drain loop aborts the
/// simulation instead of wedging the test runner.
void run_guarded(std::size_t num_targets, const std::function<void()>& body) {
    sim::platform plat(sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(60'000'000'000);
    ASSERT_EQ(
        ham::offload::run(plat, aurora::sched::loopback_targets(num_targets),
                          body),
        0);
}

/// Every admitted request must land in exactly one outcome bucket. `rejected`
/// is the caller's count of submit-time admission_errors for the session
/// (those were never admitted but still count toward session_stats::shed).
void expect_settled_exactly_once(const session_stats& st,
                                 std::uint64_t rejected) {
    EXPECT_EQ(st.admitted + rejected,
              st.completed + st.failed + st.expired + st.shed);
    EXPECT_EQ(st.queued, 0u);
}

TEST(AdmitDrainRace, RuntimeDrainDuringSessionChurn) {
    run_guarded(2, [] {
        server srv(small_cfg(32, 4));
        std::uint64_t counter = 0;
        std::map<session_id, std::uint64_t> rejected;
        std::vector<session_id> all;
        std::vector<request> reqs;
        for (int round = 0; round < 10; ++round) {
            session_options o;
            o.cls = round % 3 == 0 ? qos_class::latency : qos_class::batch;
            const session_id sid = srv.open(o);
            all.push_back(sid);
            for (int i = 0; i < 4; ++i) {
                try {
                    reqs.push_back(srv.submit(
                        sid, ham::f2f<&tk::cost_kernel>(std::int64_t(5'000),
                                                        &counter)));
                } catch (const admission_error&) {
                    ++rejected[sid];
                }
            }
            if (round % 2 == 1) {
                // Close a session that still has queued and in-flight work,
                // then immediately quiesce the *runtime* underneath the
                // still-loaded admission server. drain() must not hang on
                // the shed entries and must not settle anything twice.
                srv.close(sid);
                ham::offload::runtime::current()->drain();
            }
            srv.poll();
        }
        srv.drain();
        ham::offload::runtime::current()->drain();

        for (const session_id sid : all) {
            expect_settled_exactly_once(srv.stats(sid), rejected[sid]);
        }
        for (request& r : reqs) {
            EXPECT_TRUE(r.settled());
        }
        EXPECT_EQ(srv.backlog(), 0u);
    });
}

TEST(AdmitDrainRace, RuntimeDrainMidOverloadReturnsAndWorkSettles) {
    run_guarded(1, [] {
        // Window 1 with a deep latency backlog: the runtime quiesces while
        // the admission server still holds queued work, then serving resumes.
        server srv(small_cfg(64, 1));
        session_options o;
        o.cls = qos_class::latency;
        const session_id sid = srv.open(o);
        std::uint64_t counter = 0;
        std::vector<request> reqs;
        for (int i = 0; i < 12; ++i) {
            reqs.push_back(srv.submit(
                sid,
                ham::f2f<&tk::cost_kernel>(std::int64_t(10'000), &counter)));
        }
        ASSERT_GT(srv.stats(sid).queued, 0u);
        ham::offload::runtime::current()->drain(); // must return, not hang
        EXPECT_GT(srv.stats(sid).queued, 0u); // admission backlog unaffected
        srv.drain();
        EXPECT_EQ(counter, 12u);
        for (request& r : reqs) {
            EXPECT_NO_THROW(r.get());
        }
        expect_settled_exactly_once(srv.stats(sid), 0);
    });
}

TEST(AdmitDrainRace, InFlightDeadlineExpiryNeverDoubleSettles) {
    run_guarded(1, [] {
        server srv(small_cfg(64, 2));
        session_options o;
        o.cls = qos_class::latency;
        const session_id sid = srv.open(o);
        std::uint64_t counter = 0;
        std::vector<request> reqs;
        // Long tasks saturate the single target; every other request carries
        // a deadline that passes while it waits (some in the session queue,
        // some already handed to the scheduler — both cancellation paths).
        for (int i = 0; i < 10; ++i) {
            request_options ro;
            if (i % 2 == 1) {
                ro.deadline_ns = sim::now() + 15'000;
            }
            reqs.push_back(srv.submit(
                sid,
                ham::f2f<&tk::cost_kernel>(std::int64_t(20'000), &counter),
                ro));
        }
        srv.drain();
        ham::offload::runtime::current()->drain();

        const session_stats st = srv.stats(sid);
        expect_settled_exactly_once(st, 0);
        EXPECT_GT(st.expired, 0u);
        EXPECT_GT(st.completed, 0u);
        EXPECT_EQ(counter, st.completed); // expired work never ran
        // Double-get on a settled handle reproduces the same outcome; the
        // second observation must not re-count or flip the settlement.
        int threw = 0;
        for (request& r : reqs) {
            for (int pass = 0; pass < 2; ++pass) {
                try {
                    r.get();
                } catch (const ham::offload::deadline_exceeded_error&) {
                    ++threw;
                }
            }
        }
        EXPECT_EQ(threw, static_cast<int>(st.expired) * 2);
        EXPECT_EQ(srv.stats(sid).expired, st.expired);
        EXPECT_EQ(srv.stats(sid).completed, st.completed);
    });
}

TEST(AdmitDrainRace, CloseWhileInFlightThenDrain) {
    run_guarded(2, [] {
        server srv(small_cfg(32, 8));
        std::uint64_t counter = 0;
        const session_id sid = srv.open();
        std::vector<request> reqs;
        for (int i = 0; i < 6; ++i) {
            reqs.push_back(srv.submit(
                sid,
                ham::f2f<&tk::cost_kernel>(std::int64_t(5'000), &counter)));
        }
        // All six are in flight (window 8): closing now must let them run to
        // completion and settle into the closed session's stats.
        srv.close(sid);
        srv.drain();
        const session_stats st = srv.stats(sid);
        EXPECT_FALSE(st.open);
        EXPECT_EQ(st.completed, 6u);
        EXPECT_EQ(counter, 6u);
        expect_settled_exactly_once(st, 0);
        for (request& r : reqs) {
            EXPECT_NO_THROW(r.get());
        }
    });
}

} // namespace
} // namespace aurora::admit
