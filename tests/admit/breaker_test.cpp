// aurora::admit circuit-breaker unit tests: trip threshold, cooldown
// doubling and cap, the single half-open probe, probe aborts, retry-after
// hints. The breaker reads sim::now(), so every test body runs inside a
// simulated host process.
#include <gtest/gtest.h>

#include <functional>

#include "admit/breaker.hpp"
#include "sim/platform.hpp"
#include "tests/support/sim_fixture.hpp"

namespace aurora::admit {
namespace {

/// Breakers derive every decision from virtual time; give them a clock.
void run_sim(const std::function<void()>& body) {
    sim::platform plat(sim::platform_config::test_machine());
    aurora::testing::run_as_vh(plat, body);
}

breaker_config tight_cfg() {
    breaker_config cfg;
    cfg.failure_threshold = 3;
    cfg.probe_successes = 2;
    cfg.cooldown_ns = 1'000;
    cfg.cooldown_cap_ns = 3'000;
    return cfg;
}

TEST(AdmitBreaker, TripsAfterConsecutiveFailures) {
    run_sim([] {
        breaker b(tight_cfg());
        EXPECT_EQ(b.state(), breaker_state::closed);
        EXPECT_TRUE(b.allow());
        b.record_failure();
        b.record_failure();
        EXPECT_EQ(b.state(), breaker_state::closed);
        EXPECT_EQ(b.retry_after(), 0);
        b.record_failure(); // third consecutive: trip
        EXPECT_EQ(b.state(), breaker_state::open);
        EXPECT_FALSE(b.allow());
        EXPECT_EQ(b.trips(), 1u);
        EXPECT_EQ(b.retry_after(), 1'000);
    });
}

TEST(AdmitBreaker, SuccessResetsFailureStreak) {
    run_sim([] {
        breaker b(tight_cfg());
        b.record_failure();
        b.record_failure();
        b.record_success(); // streak broken
        b.record_failure();
        b.record_failure();
        EXPECT_EQ(b.state(), breaker_state::closed);
        EXPECT_EQ(b.trips(), 0u);
    });
}

TEST(AdmitBreaker, HalfOpenAdmitsSingleProbeThenRecloses) {
    run_sim([] {
        breaker b(tight_cfg());
        for (int i = 0; i < 3; ++i) {
            b.record_failure();
        }
        sim::advance(999);
        EXPECT_EQ(b.state(), breaker_state::open);
        sim::advance(1);
        EXPECT_EQ(b.state(), breaker_state::half_open);
        EXPECT_EQ(b.retry_after(), 0);

        EXPECT_TRUE(b.allow());  // the probe
        EXPECT_FALSE(b.allow()); // everything else sheds while it is out
        b.record_success();
        EXPECT_EQ(b.state(), breaker_state::half_open); // needs 2 successes
        EXPECT_TRUE(b.allow());
        b.record_success();
        EXPECT_EQ(b.state(), breaker_state::closed);
        EXPECT_TRUE(b.allow());
    });
}

TEST(AdmitBreaker, FailedProbeReopensWithDoubledCappedCooldown) {
    run_sim([] {
        breaker b(tight_cfg());
        for (int i = 0; i < 3; ++i) {
            b.record_failure();
        }
        // First re-trip from half_open: cooldown doubles to 2000.
        sim::advance(1'000);
        ASSERT_TRUE(b.allow());
        b.record_failure();
        EXPECT_EQ(b.state(), breaker_state::open);
        EXPECT_EQ(b.trips(), 2u);
        EXPECT_EQ(b.retry_after(), 2'000);
        // Second re-trip: doubling is capped at 3000, not 4000.
        sim::advance(2'000);
        ASSERT_TRUE(b.allow());
        b.record_failure();
        EXPECT_EQ(b.retry_after(), 3'000);
        // And it stays at the cap from then on.
        sim::advance(3'000);
        ASSERT_TRUE(b.allow());
        b.record_failure();
        EXPECT_EQ(b.retry_after(), 3'000);
    });
}

TEST(AdmitBreaker, ReclosureRearmsBaseCooldown) {
    run_sim([] {
        breaker b(tight_cfg());
        for (int i = 0; i < 3; ++i) {
            b.record_failure();
        }
        sim::advance(1'000);
        ASSERT_TRUE(b.allow());
        b.record_failure(); // cooldown now 2000
        sim::advance(2'000);
        ASSERT_TRUE(b.allow());
        b.record_success();
        ASSERT_TRUE(b.allow());
        b.record_success();
        ASSERT_EQ(b.state(), breaker_state::closed);
        // A fresh trip after reclosure starts from the base cooldown again.
        for (int i = 0; i < 3; ++i) {
            b.record_failure();
        }
        EXPECT_EQ(b.retry_after(), 1'000);
    });
}

TEST(AdmitBreaker, AbortProbeFreesTheSlotWithoutVerdict) {
    run_sim([] {
        breaker b(tight_cfg());
        for (int i = 0; i < 3; ++i) {
            b.record_failure();
        }
        sim::advance(1'000);
        ASSERT_TRUE(b.allow());
        ASSERT_FALSE(b.allow()); // probe outstanding
        b.abort_probe();         // probe cancelled before it could run
        EXPECT_EQ(b.state(), breaker_state::half_open); // no verdict recorded
        EXPECT_TRUE(b.allow()); // slot free again: breaker never wedges
    });
}

TEST(AdmitBreaker, RetryAfterCountsDownWithVirtualTime) {
    run_sim([] {
        breaker b(tight_cfg());
        for (int i = 0; i < 3; ++i) {
            b.record_failure();
        }
        EXPECT_EQ(b.retry_after(), 1'000);
        sim::advance(400);
        EXPECT_EQ(b.retry_after(), 600);
        sim::advance(600);
        EXPECT_EQ(b.retry_after(), 0);
    });
}

} // namespace
} // namespace aurora::admit
