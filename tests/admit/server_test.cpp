// aurora::admit server tests: session lifecycle, quota and queue bounds,
// priority-aware occupancy shedding, strict class priority and weighted
// fair-share dispatch order, deadline propagation (queued and scheduler
// paths), failure isolation, the per-target breaker lifecycle through the
// serving path, and whole-run determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tests/admit/admit_test_common.hpp"

namespace aurora::admit {
namespace {

using ham::offload::admission_error;
using ham::offload::deadline_exceeded_error;
using ham::offload::offload_error;

TEST(AdmitServer, SessionLifecycleAndCompletionCounts) {
    run_sched(2, [] {
        server srv(small_cfg(16, 8));
        session_options o;
        o.tenant = "acme";
        o.cls = qos_class::latency;
        const session_id sid = srv.open(o);
        EXPECT_EQ(srv.open_sessions(), 1u);

        std::uint64_t counter = 0;
        std::vector<request> reqs;
        for (int i = 0; i < 4; ++i) {
            reqs.push_back(srv.submit(sid, ham::f2f<&tk::bump>(&counter)));
        }
        srv.drain();
        EXPECT_EQ(counter, 4u);
        for (request& r : reqs) {
            EXPECT_NO_THROW(r.get());
        }
        const session_stats st = srv.stats(sid);
        EXPECT_EQ(st.admitted, 4u);
        EXPECT_EQ(st.completed, 4u);
        EXPECT_EQ(st.shed, 0u);
        EXPECT_EQ(st.queued, 0u);
        EXPECT_TRUE(st.open);
        EXPECT_EQ(srv.backlog(), 0u);

        srv.close(sid);
        EXPECT_FALSE(srv.stats(sid).open);
        EXPECT_EQ(srv.open_sessions(), 0u);
        srv.close(sid); // idempotent
        EXPECT_EQ(srv.open_sessions(), 0u);
    });
}

TEST(AdmitServer, ClosedSessionShedsSubmits) {
    run_sched(1, [] {
        server srv(small_cfg(16, 8));
        const session_id sid = srv.open();
        srv.close(sid);
        std::uint64_t counter = 0;
        EXPECT_THROW(srv.submit(sid, ham::f2f<&tk::bump>(&counter)),
                     admission_error);
        EXPECT_EQ(srv.stats(sid).shed, 1u);
        EXPECT_EQ(counter, 0u);
    });
}

TEST(AdmitServer, QuotaExhaustionSheds) {
    run_sched(1, [] {
        server srv(small_cfg(16, 8));
        session_options o;
        o.quota = 2;
        const session_id sid = srv.open(o);
        std::uint64_t counter = 0;
        (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter));
        (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter));
        try {
            (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter));
            FAIL() << "third submit must exceed the quota of 2";
        } catch (const admission_error& e) {
            EXPECT_NE(std::string(e.what()).find("quota"), std::string::npos);
            EXPECT_EQ(e.retry_after_ns(), 0); // a quota never refills
        }
        srv.drain();
        EXPECT_EQ(counter, 2u);
        EXPECT_EQ(srv.stats(sid).shed, 1u);
    });
}

TEST(AdmitServer, PerSessionQueueBoundSheds) {
    run_sched(1, [] {
        server srv(small_cfg(64, 1));
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 10'000'000, &prefill_done);

        session_options o;
        o.cls = qos_class::latency;
        o.max_queued = 2;
        const session_id sid = srv.open(o);
        std::uint64_t counter = 0;
        (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter));
        (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter));
        EXPECT_EQ(srv.stats(sid).queued, 2u);
        try {
            (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter));
            FAIL() << "third submit must overflow max_queued=2";
        } catch (const admission_error& e) {
            EXPECT_NE(std::string(e.what()).find("queue full"),
                      std::string::npos);
            EXPECT_GT(e.retry_after_ns(), 0); // backlog drains: hinted retry
        }
        srv.drain();
        EXPECT_EQ(prefill_done, 1u);
        EXPECT_EQ(counter, 2u);
    });
}

TEST(AdmitServer, OccupancyShedsByClassPriority) {
    run_sched(1, [] {
        // capacity 8: background sheds at backlog 4 (50%), batch at 6 (75%),
        // latency only when full. Window 1 keeps admitted work queued.
        server srv(small_cfg(8, 1));
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 10'000'000, &prefill_done);

        session_options lo, bo, go;
        lo.cls = qos_class::latency;
        bo.cls = qos_class::batch;
        go.cls = qos_class::background;
        const session_id l = srv.open(lo);
        const session_id b = srv.open(bo);
        const session_id g = srv.open(go);
        std::uint64_t counter = 0;
        auto work = [&] { return ham::f2f<&tk::bump>(&counter); };

        for (int i = 0; i < 3; ++i) {
            (void)srv.submit(l, work()); // backlog 2, 3, 4
        }
        try {
            (void)srv.submit(g, work()); // background at 50%: shed
            FAIL() << "background must shed at half occupancy";
        } catch (const admission_error& e) {
            EXPECT_GT(e.retry_after_ns(), 0);
        }
        (void)srv.submit(b, work()); // backlog 5
        (void)srv.submit(b, work()); // backlog 6
        EXPECT_THROW((void)srv.submit(b, work()), admission_error); // 75%
        (void)srv.submit(l, work()); // backlog 7
        (void)srv.submit(l, work()); // backlog 8: full
        EXPECT_THROW((void)srv.submit(l, work()), admission_error);

        srv.drain();
        EXPECT_EQ(counter, 7u); // 5 latency + 2 batch bumps ran
        EXPECT_EQ(srv.stats(g).shed, 1u);
        EXPECT_EQ(srv.stats(b).shed, 1u);
        EXPECT_EQ(srv.stats(l).shed, 1u);
        EXPECT_EQ(srv.backlog(), 0u);
    });
}

TEST(AdmitServer, StrictClassPriorityDispatchOrder) {
    run_sched(1, [] {
        server srv(small_cfg(64, 1));
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 1'000'000, &prefill_done);

        session_options lo, bo, go;
        lo.cls = qos_class::latency;
        bo.cls = qos_class::batch;
        go.cls = qos_class::background;
        const session_id g = srv.open(go);
        const session_id b = srv.open(bo);
        const session_id l = srv.open(lo);

        // Submitted lowest class first; dispatch must invert that order.
        std::vector<int> log;
        for (int i = 0; i < 3; ++i) {
            (void)srv.submit(g, ham::f2f<&tk::record>(&log, 100 + i));
        }
        for (int i = 0; i < 3; ++i) {
            (void)srv.submit(b, ham::f2f<&tk::record>(&log, 200 + i));
        }
        for (int i = 0; i < 3; ++i) {
            (void)srv.submit(l, ham::f2f<&tk::record>(&log, 300 + i));
        }
        srv.drain();
        const std::vector<int> want = {300, 301, 302, 200, 201,
                                       202, 100, 101, 102};
        EXPECT_EQ(log, want);
    });
}

TEST(AdmitServer, WeightedFairShareHoldsUnderTricklingCapacity) {
    run_sched(1, [] {
        // Window 1: capacity frees one slot at a time, the hardest case for
        // weighted fairness — deficit round robin must still yield 3:1.
        server srv(small_cfg(64, 1));
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 1'000'000, &prefill_done);

        session_options heavy, light;
        heavy.cls = qos_class::batch;
        heavy.weight = 3;
        light.cls = qos_class::batch;
        light.weight = 1;
        const session_id a = srv.open(heavy);
        const session_id b = srv.open(light);

        std::vector<int> log;
        for (int i = 0; i < 6; ++i) {
            (void)srv.submit(a, ham::f2f<&tk::record>(&log, 1));
        }
        for (int i = 0; i < 6; ++i) {
            (void)srv.submit(b, ham::f2f<&tk::record>(&log, 2));
        }
        srv.drain();
        const std::vector<int> want = {1, 1, 1, 2, 1, 1, 1, 2, 2, 2, 2, 2};
        EXPECT_EQ(log, want);
    });
}

TEST(AdmitServer, QueuedDeadlineExpiresBeforeDispatch) {
    run_sched(1, [] {
        server srv(small_cfg(64, 1));
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 1'000'000, &prefill_done);

        session_options o;
        o.cls = qos_class::latency;
        const session_id sid = srv.open(o);
        std::uint64_t counter = 0;

        request_options tight;
        tight.deadline_ns = sim::now() + 10'000; // passes while queued
        request doomed = srv.submit(sid, ham::f2f<&tk::bump>(&counter), tight);
        request fine = srv.submit(sid, ham::f2f<&tk::bump>(&counter));

        srv.drain();
        EXPECT_THROW(doomed.get(), deadline_exceeded_error);
        EXPECT_NO_THROW(fine.get());
        EXPECT_EQ(counter, 1u); // the expired request never ran
        const session_stats st = srv.stats(sid);
        EXPECT_EQ(st.expired, 1u);
        EXPECT_EQ(st.completed, 1u);
    });
}

TEST(AdmitServer, SessionDefaultDeadlineApplies) {
    run_sched(1, [] {
        server srv(small_cfg(64, 1));
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 1'000'000, &prefill_done);

        session_options o;
        o.cls = qos_class::latency;
        o.default_deadline_ns = 5'000; // absolute: now + 5us per request
        const session_id sid = srv.open(o);
        std::uint64_t counter = 0;
        request r = srv.submit(sid, ham::f2f<&tk::bump>(&counter));
        srv.drain();
        EXPECT_THROW(r.get(), deadline_exceeded_error);
        EXPECT_EQ(counter, 0u);
        EXPECT_EQ(srv.stats(sid).expired, 1u);
    });
}

TEST(AdmitServer, DeadlinePropagatesIntoSchedulerQueue) {
    run_sched(1, [] {
        // Window 2 but a single-message target window: the deadline request
        // reaches the scheduler and waits in its ready queue behind a long
        // task, so the *executor's* dispatch-time cancellation must fire and
        // the server must map it back to deadline_exceeded_error.
        server::config cfg = small_cfg(64, 2);
        cfg.exec.window = 1;
        server srv(cfg);
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 1'000'000, &prefill_done);

        session_options o;
        o.cls = qos_class::latency;
        const session_id sid = srv.open(o);
        std::uint64_t counter = 0;
        request_options tight;
        tight.deadline_ns = sim::now() + 10'000;
        request doomed = srv.submit(sid, ham::f2f<&tk::bump>(&counter), tight);

        srv.drain();
        EXPECT_THROW(doomed.get(), deadline_exceeded_error);
        EXPECT_EQ(counter, 0u);
        EXPECT_EQ(srv.stats(sid).expired, 1u);
        EXPECT_GT(srv.scheduler().stats().tasks_expired, 0u);
    });
}

TEST(AdmitServer, CloseShedsQueuedButInFlightCompletes) {
    run_sched(1, [] {
        server srv(small_cfg(64, 1));
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 1'000'000, &prefill_done);

        const session_id sid = srv.open();
        std::uint64_t counter = 0;
        request q1 = srv.submit(sid, ham::f2f<&tk::bump>(&counter));
        request q2 = srv.submit(sid, ham::f2f<&tk::bump>(&counter));
        ASSERT_EQ(srv.stats(sid).queued, 2u);

        srv.close(sid);
        EXPECT_EQ(srv.stats(sid).queued, 0u);
        EXPECT_EQ(srv.stats(sid).shed, 2u);
        EXPECT_TRUE(q1.settled());
        EXPECT_THROW(q1.get(), admission_error);
        EXPECT_THROW(q2.get(), admission_error);

        srv.drain(); // the in-flight prefill still runs to completion
        EXPECT_EQ(prefill_done, 1u);
        EXPECT_EQ(counter, 0u);
        EXPECT_EQ(srv.backlog(), 0u);
    });
}

TEST(AdmitServer, TenantFailureIsIsolated) {
    run_sched(2, [] {
        server srv(small_cfg(16, 8));
        const session_id bad = srv.open({.tenant = "bad"});
        const session_id good = srv.open({.tenant = "good"});
        std::uint64_t counter = 0;
        request boom = srv.submit(bad, ham::f2f<&tk::boom>());
        std::vector<request> oks;
        for (int i = 0; i < 4; ++i) {
            oks.push_back(srv.submit(good, ham::f2f<&tk::bump>(&counter)));
        }
        srv.drain();
        try {
            boom.get();
            FAIL() << "a raising kernel must surface as offload_error";
        } catch (const deadline_exceeded_error&) {
            FAIL() << "wrong error type: deadline_exceeded_error";
        } catch (const admission_error&) {
            FAIL() << "wrong error type: admission_error";
        } catch (const offload_error& e) {
            // expected: a plain execution failure carrying the root cause
            // (the executor's per-task error, not just "failed on node N")
            EXPECT_NE(std::string(e.what()).find("task exploded"),
                      std::string::npos);
        }
        for (request& r : oks) {
            EXPECT_NO_THROW(r.get());
        }
        EXPECT_EQ(counter, 4u);
        EXPECT_EQ(srv.stats(bad).failed, 1u);
        EXPECT_EQ(srv.stats(good).completed, 4u);
    });
}

TEST(AdmitServer, BreakerTripsShedsProbesAndRecloses) {
    run_sched(2, [] {
        server::config cfg = small_cfg(16, 8);
        cfg.breaker.failure_threshold = 3;
        cfg.breaker.probe_successes = 1;
        cfg.breaker.cooldown_ns = 10'000;
        server srv(cfg);
        session_options o;
        o.cls = qos_class::latency;
        const session_id sid = srv.open(o);

        request_options pin1;
        pin1.affinity = 1;
        pin1.pinned = true;
        for (int i = 0; i < 3; ++i) {
            request r = srv.submit(sid, ham::f2f<&tk::boom>(), pin1);
            r.wait();
        }
        EXPECT_EQ(srv.breaker_of(1), breaker_state::open);

        // Open breaker: node-1 work sheds with the cooldown as the hint...
        std::uint64_t counter = 0;
        try {
            (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter), pin1);
            FAIL() << "open breaker must shed node-1 work";
        } catch (const admission_error& e) {
            EXPECT_GT(e.retry_after_ns(), 0);
            EXPECT_NE(std::string(e.what()).find("breaker"), std::string::npos);
        }
        // ...while node 2 serves unaffected.
        request_options pin2;
        pin2.affinity = 2;
        pin2.pinned = true;
        request ok = srv.submit(sid, ham::f2f<&tk::bump>(&counter), pin2);
        ok.wait();
        EXPECT_EQ(counter, 1u);

        // Cooldown elapses: exactly one probe passes, siblings shed.
        sim::advance(10'000);
        EXPECT_EQ(srv.breaker_of(1), breaker_state::half_open);
        request probe = srv.submit(sid, ham::f2f<&tk::bump>(&counter), pin1);
        try {
            (void)srv.submit(sid, ham::f2f<&tk::bump>(&counter), pin1);
            FAIL() << "half-open breaker must shed while the probe is out";
        } catch (const admission_error& e) {
            // Every resubmission sheds until the probe settles: the hint
            // must not be 0 ("may retry now") or clients spin.
            EXPECT_GT(e.retry_after_ns(), 0);
        }
        probe.get();
        EXPECT_EQ(srv.breaker_of(1), breaker_state::closed);
        EXPECT_EQ(counter, 2u);
    });
}

TEST(AdmitServer, ClosingSessionWithQueuedProbeUnwedgesBreaker) {
    run_sched(2, [] {
        server::config cfg = small_cfg(64, 1);
        cfg.breaker.failure_threshold = 3;
        cfg.breaker.probe_successes = 1;
        cfg.breaker.cooldown_ns = 10'000;
        server srv(cfg);
        session_options o;
        o.cls = qos_class::latency;
        const session_id flaky = srv.open(o);
        request_options pin1;
        pin1.affinity = 1;
        pin1.pinned = true;
        for (int i = 0; i < 3; ++i) {
            srv.submit(flaky, ham::f2f<&tk::boom>(), pin1).wait();
        }
        sim::advance(10'000);
        ASSERT_EQ(srv.breaker_of(1), breaker_state::half_open);

        // Fill the window so the probe stays queued, then close its session:
        // the probe slot must be released, not wedged half-open forever.
        std::uint64_t prefill_done = 0;
        request hold = occupy_window(srv, 1'000'000, &prefill_done);
        std::uint64_t counter = 0;
        request doomed_probe =
            srv.submit(flaky, ham::f2f<&tk::bump>(&counter), pin1);
        srv.close(flaky);
        EXPECT_THROW(doomed_probe.get(), admission_error);

        // A fresh session can immediately field the next probe and reclose.
        const session_id next = srv.open(o);
        request probe = srv.submit(next, ham::f2f<&tk::bump>(&counter), pin1);
        srv.drain();
        EXPECT_NO_THROW(probe.get());
        EXPECT_EQ(srv.breaker_of(1), breaker_state::closed);
        EXPECT_EQ(counter, 1u);
    });
}

/// One mixed workload; returns its observable trace for replay comparison.
struct run_trace {
    std::vector<int> log;
    std::vector<std::uint64_t> stats;
    std::uint64_t backlog = 0;

    bool operator==(const run_trace&) const = default;
};

run_trace mixed_workload() {
    run_trace out;
    server::config cfg = small_cfg(12, 2);
    cfg.breaker.failure_threshold = 2;
    server srv(cfg);
    session_options lo, bo, go;
    lo.cls = qos_class::latency;
    lo.weight = 2;
    bo.cls = qos_class::batch;
    go.cls = qos_class::background;
    const session_id l = srv.open(lo);
    const session_id b = srv.open(bo);
    const session_id g = srv.open(go);
    std::uint64_t counter = 0;
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 3; ++i) {
            try {
                (void)srv.submit(l, ham::f2f<&tk::record>(&out.log,
                                                          100 * round + i));
            } catch (const admission_error&) {
            }
        }
        request_options tight;
        tight.deadline_ns = sim::now() + 5'000;
        try {
            (void)srv.submit(b, ham::f2f<&tk::cost_kernel>(
                                    std::int64_t(20'000), &counter),
                             tight);
        } catch (const admission_error&) {
        }
        try {
            (void)srv.submit(g, ham::f2f<&tk::bump>(&counter));
        } catch (const admission_error&) {
        }
        srv.poll();
    }
    srv.drain();
    for (const session_id sid : {l, b, g}) {
        const session_stats st = srv.stats(sid);
        out.stats.insert(out.stats.end(),
                         {st.admitted, st.completed, st.shed, st.expired,
                          st.failed});
    }
    out.backlog = srv.backlog();
    return out;
}

TEST(AdmitServer, ReplaysDeterministically) {
    run_trace first, second;
    run_sched(2, [&] { first = mixed_workload(); });
    run_sched(2, [&] { second = mixed_workload(); });
    EXPECT_EQ(first, second);
    // The workload is non-trivial: something completed and something shed
    // or expired, so equality is not vacuous.
    EXPECT_FALSE(first.log.empty());
}

} // namespace
} // namespace aurora::admit
