#include "veo/veo_api.hpp"

#include <numeric>

#include <cstring>

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"

namespace aurora::veo {
namespace {

using testing::aurora_fixture;
using veos::program_image;
using veos::ve_call_context;

/// A small VE library used across the tests.
const program_image& test_image() {
    static const program_image img = [] {
        program_image i("libveo_test.so");
        i.add_symbol("add2", [](ve_call_context& ctx) -> std::uint64_t {
            return ctx.arg_u64(0) + ctx.arg_u64(1);
        });
        i.add_symbol("scale", [](ve_call_context& ctx) -> std::uint64_t {
            const double d = ctx.arg_double(0) * 2.0;
            std::uint64_t bits;
            std::memcpy(&bits, &d, sizeof(bits));
            return bits;
        });
        i.add_symbol("sum_stack", [](ve_call_context& ctx) -> std::uint64_t {
            const std::uint64_t addr = ctx.arg_u64(0);
            const std::uint64_t n = ctx.arg_u64(1);
            std::vector<std::uint64_t> v(n);
            ctx.proc().mem().read(addr, v.data(), n * 8);
            return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
        });
        i.add_symbol("fill_stack", [](ve_call_context& ctx) -> std::uint64_t {
            const std::uint64_t addr = ctx.arg_u64(0);
            const std::uint64_t n = ctx.arg_u64(1);
            std::vector<std::uint64_t> v(n);
            for (std::uint64_t k = 0; k < n; ++k) v[k] = k * k;
            ctx.proc().mem().write(addr, v.data(), n * 8);
            return 0;
        });
        i.add_symbol("throws", [](ve_call_context&) -> std::uint64_t {
            throw std::runtime_error("ve exception");
        });
        return i;
    }();
    return img;
}

struct VeoApi : ::testing::Test {
    VeoApi() { fx.sys.install_image(test_image()); }
    aurora_fixture fx;
};

TEST_F(VeoApi, ProcCreateDestroy) {
    fx.run([&] {
        veo_proc_handle* h = veo_proc_create(fx.sys, 0);
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->venode, 0);
        EXPECT_EQ(veo_proc_destroy(h), 0);
    });
}

TEST_F(VeoApi, ProcCreateInvalidNodeFails) {
    fx.run([&] {
        EXPECT_EQ(veo_proc_create(fx.sys, 5), nullptr);
        EXPECT_EQ(veo_proc_create(fx.sys, -1), nullptr);
    });
}

TEST_F(VeoApi, ProcCreateTakesRealisticTime) {
    fx.run([&] {
        const sim::time_ns before = sim::now();
        proc_guard h(fx.sys, 0);
        EXPECT_GE(sim::now() - before, 100'000'000); // ~120 ms VE bring-up
    });
}

TEST_F(VeoApi, LoadLibraryAndGetSym) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        ASSERT_NE(lib, 0u);
        EXPECT_NE(veo_get_sym(h.get(), lib, "add2"), 0u);
        EXPECT_EQ(veo_get_sym(h.get(), lib, "missing"), 0u);
        EXPECT_EQ(veo_load_library(h.get(), "not_installed.so"), 0u);
    });
}

TEST_F(VeoApi, AsyncCallRoundTrip) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "add2");
        veo_thr_ctxt* ctx = veo_context_open(h.get());

        veo_args* args = veo_args_alloc();
        args->set_u64(0, 40);
        args->set_u64(1, 2);
        const std::uint64_t req = veo_call_async(ctx, sym, args);
        std::uint64_t ret = 0;
        EXPECT_EQ(veo_call_wait_result(ctx, req, &ret), VEO_COMMAND_OK);
        EXPECT_EQ(ret, 42u);
        veo_args_free(args);
    });
}

TEST_F(VeoApi, EmptyCallCostMatchesFig9Reference) {
    // Fig. 9: a native VEO offload of an (almost) empty kernel costs ~80 us.
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "add2");
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        veo_args* args = veo_args_alloc();
        args->set_u64(0, 0);
        args->set_u64(1, 0);

        const sim::time_ns before = sim::now();
        const std::uint64_t req = veo_call_async(ctx, sym, args);
        std::uint64_t ret = 0;
        (void)veo_call_wait_result(ctx, req, &ret);
        const sim::time_ns cost = sim::now() - before;
        EXPECT_NEAR(double(cost), 80'000.0, 8'000.0);
        veo_args_free(args);
    });
}

TEST_F(VeoApi, DoubleArgument) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "scale");
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        veo_args* args = veo_args_alloc();
        args->set_double(0, 21.5);
        std::uint64_t ret = 0;
        EXPECT_EQ(veo_call_wait_result(ctx, veo_call_async(ctx, sym, args), &ret),
                  VEO_COMMAND_OK);
        double d;
        std::memcpy(&d, &ret, sizeof(d));
        EXPECT_DOUBLE_EQ(d, 43.0);
        veo_args_free(args);
    });
}

TEST_F(VeoApi, StackArgumentIn) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "sum_stack");
        veo_thr_ctxt* ctx = veo_context_open(h.get());

        std::vector<std::uint64_t> data{1, 2, 3, 4};
        veo_args* args = veo_args_alloc();
        args->set_stack(0, VEO_INTENT_IN, data.data(), data.size() * 8);
        args->set_u64(1, data.size());
        std::uint64_t ret = 0;
        EXPECT_EQ(veo_call_wait_result(ctx, veo_call_async(ctx, sym, args), &ret),
                  VEO_COMMAND_OK);
        EXPECT_EQ(ret, 10u);
        veo_args_free(args);
    });
}

TEST_F(VeoApi, StackArgumentOut) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "fill_stack");
        veo_thr_ctxt* ctx = veo_context_open(h.get());

        std::vector<std::uint64_t> data(5, 0);
        veo_args* args = veo_args_alloc();
        args->set_stack(0, VEO_INTENT_OUT, data.data(), data.size() * 8);
        args->set_u64(1, data.size());
        std::uint64_t ret = 1;
        EXPECT_EQ(veo_call_wait_result(ctx, veo_call_async(ctx, sym, args), &ret),
                  VEO_COMMAND_OK);
        EXPECT_EQ(data, (std::vector<std::uint64_t>{0, 1, 4, 9, 16}));
        veo_args_free(args);
    });
}

TEST_F(VeoApi, ExceptionInVeFunctionReported) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "throws");
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        std::uint64_t ret = 0;
        EXPECT_EQ(
            veo_call_wait_result(ctx, veo_call_async(ctx, sym, nullptr), &ret),
            VEO_COMMAND_EXCEPTION);
    });
}

TEST_F(VeoApi, CallWithSymbolZeroIsError) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        const std::uint64_t req = veo_call_async(ctx, 0, nullptr);
        EXPECT_EQ(req, VEO_REQUEST_ID_INVALID);
        EXPECT_EQ(veo_call_wait_result(ctx, req, nullptr), VEO_COMMAND_ERROR);
    });
}

TEST_F(VeoApi, PeekResultUnfinishedThenOk) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "add2");
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        veo_args* args = veo_args_alloc();
        args->set_u64(0, 1);
        args->set_u64(1, 2);
        const std::uint64_t req = veo_call_async(ctx, sym, args);
        std::uint64_t ret = 0;
        // Immediately after submission the VE has not dispatched yet.
        EXPECT_EQ(veo_call_peek_result(ctx, req, &ret), VEO_COMMAND_UNFINISHED);
        // Give the VE time to run the call.
        sim::advance(1'000'000);
        EXPECT_EQ(veo_call_peek_result(ctx, req, &ret), VEO_COMMAND_OK);
        EXPECT_EQ(ret, 3u);
        veo_args_free(args);
    });
}

TEST_F(VeoApi, AllocWriteReadFree) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        std::uint64_t addr = 0;
        ASSERT_EQ(veo_alloc_mem(h.get(), &addr, 1 * MiB), 0);
        ASSERT_NE(addr, 0u);

        std::vector<std::uint8_t> src(1 * MiB);
        std::iota(src.begin(), src.end(), 0);
        EXPECT_EQ(veo_write_mem(h.get(), addr, src.data(), src.size()), 0);

        std::vector<std::uint8_t> dst(src.size(), 0);
        EXPECT_EQ(veo_read_mem(h.get(), dst.data(), addr, dst.size()), 0);
        EXPECT_EQ(src, dst);
        EXPECT_EQ(veo_free_mem(h.get(), addr), 0);
    });
}

TEST_F(VeoApi, AllocZeroFails) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        std::uint64_t addr = 0;
        EXPECT_EQ(veo_alloc_mem(h.get(), &addr, 0), -1);
    });
}

TEST_F(VeoApi, MultipleOutstandingCallsCompleteInOrder) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_test.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "add2");
        veo_thr_ctxt* ctx = veo_context_open(h.get());

        std::vector<std::uint64_t> reqs;
        std::vector<veo_args*> all_args;
        for (std::uint64_t i = 0; i < 5; ++i) {
            veo_args* args = veo_args_alloc();
            args->set_u64(0, i);
            args->set_u64(1, 100);
            all_args.push_back(args);
            reqs.push_back(veo_call_async(ctx, sym, args));
        }
        for (std::uint64_t i = 0; i < 5; ++i) {
            std::uint64_t ret = 0;
            EXPECT_EQ(veo_call_wait_result(ctx, reqs[i], &ret), VEO_COMMAND_OK);
            EXPECT_EQ(ret, 100 + i);
        }
        for (auto* a : all_args) veo_args_free(a);
    });
}

TEST_F(VeoApi, ArgsValidation) {
    veo_args args;
    EXPECT_THROW(args.set_u64(-1, 0), check_error);
    EXPECT_THROW(args.set_u64(32, 0), check_error);
    EXPECT_THROW(args.set_stack(0, VEO_INTENT_IN, nullptr, 8), check_error);
    args.set_u64(3, 9);
    EXPECT_EQ(args.num_args(), 4u);
    args.clear();
    EXPECT_EQ(args.num_args(), 0u);
}

TEST_F(VeoApi, SecondSocketAllowed) {
    sim::platform plat(sim::platform_config::a300_8());
    veos::veos_system sys(plat);
    sys.install_image(test_image());
    testing::run_as_vh(plat, [&] {
        veo_proc_handle* h = veo_proc_create(sys, 0, /*socket=*/1);
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->socket, 1);
        veo_proc_destroy(h);
    });
}

} // namespace
} // namespace aurora::veo
