// Tests of the extended VEO API surface (sync calls, async transfers,
// 32-bit/float argument setters).
#include <cstring>
#include <numeric>

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"
#include "veo/veo_api.hpp"

namespace aurora::veo {
namespace {

using testing::aurora_fixture;
using veos::program_image;
using veos::ve_call_context;

const program_image& ext_image() {
    static const program_image img = [] {
        program_image i("libveo_ext.so");
        i.add_symbol("echo0", [](ve_call_context& ctx) -> std::uint64_t {
            return ctx.arg_u64(0);
        });
        i.add_symbol("addf", [](ve_call_context& ctx) -> std::uint64_t {
            float a, b;
            const std::uint64_t ra = ctx.arg_u64(0), rb = ctx.arg_u64(1);
            const auto la = std::uint32_t(ra), lb = std::uint32_t(rb);
            std::memcpy(&a, &la, 4);
            std::memcpy(&b, &lb, 4);
            const float s = a + b;
            std::uint32_t bits;
            std::memcpy(&bits, &s, 4);
            return bits;
        });
        return i;
    }();
    return img;
}

struct VeoExt : ::testing::Test {
    VeoExt() { fx.sys.install_image(ext_image()); }
    aurora_fixture fx;
};

TEST_F(VeoExt, CallSyncConvenience) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_ext.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "echo0");
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        veo_args* args = veo_args_alloc();
        args->set_u64(0, 777);
        std::uint64_t ret = 0;
        EXPECT_EQ(veo_call_sync(ctx, sym, args, &ret), VEO_COMMAND_OK);
        EXPECT_EQ(ret, 777u);
        veo_args_free(args);
    });
}

TEST_F(VeoExt, Int32SignExtension) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_ext.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "echo0");
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        veo_args* args = veo_args_alloc();
        args->set_i32(0, -5);
        std::uint64_t ret = 0;
        EXPECT_EQ(veo_call_sync(ctx, sym, args, &ret), VEO_COMMAND_OK);
        EXPECT_EQ(std::int64_t(ret), -5);
        args->clear();
        args->set_u32(0, 0xFFFFFFFFu);
        EXPECT_EQ(veo_call_sync(ctx, sym, args, &ret), VEO_COMMAND_OK);
        EXPECT_EQ(ret, 0xFFFFFFFFu); // zero-extended
        veo_args_free(args);
    });
}

TEST_F(VeoExt, FloatArguments) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_ext.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "addf");
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        veo_args* args = veo_args_alloc();
        args->set_float(0, 1.25f);
        args->set_float(1, 2.5f);
        std::uint64_t ret = 0;
        EXPECT_EQ(veo_call_sync(ctx, sym, args, &ret), VEO_COMMAND_OK);
        float s;
        const auto bits = std::uint32_t(ret);
        std::memcpy(&s, &bits, 4);
        EXPECT_FLOAT_EQ(s, 3.75f);
        veo_args_free(args);
    });
}

TEST_F(VeoExt, AsyncWriteReadMem) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        veo_thr_ctxt* ctx = veo_context_open(h.get());
        std::uint64_t addr = 0;
        ASSERT_EQ(veo_alloc_mem(h.get(), &addr, 64 * KiB), 0);

        std::vector<std::uint8_t> src(64 * KiB);
        std::iota(src.begin(), src.end(), 3);
        const std::uint64_t wreq =
            veo_async_write_mem(ctx, addr, src.data(), src.size());
        ASSERT_NE(wreq, VEO_REQUEST_ID_INVALID);
        EXPECT_EQ(veo_call_wait_result(ctx, wreq, nullptr), VEO_COMMAND_OK);

        std::vector<std::uint8_t> dst(src.size(), 0);
        const std::uint64_t rreq =
            veo_async_read_mem(ctx, dst.data(), addr, dst.size());
        ASSERT_NE(rreq, VEO_REQUEST_ID_INVALID);
        EXPECT_EQ(veo_call_wait_result(ctx, rreq, nullptr), VEO_COMMAND_OK);
        EXPECT_EQ(src, dst);
        EXPECT_EQ(veo_free_mem(h.get(), addr), 0);
    });
}

TEST_F(VeoExt, MultipleContextsShareTheProcess) {
    fx.run([&] {
        proc_guard h(fx.sys, 0);
        const std::uint64_t lib = veo_load_library(h.get(), "libveo_ext.so");
        const std::uint64_t sym = veo_get_sym(h.get(), lib, "echo0");
        veo_thr_ctxt* c1 = veo_context_open(h.get());
        veo_thr_ctxt* c2 = veo_context_open(h.get());
        ASSERT_NE(c1, c2);
        veo_args* args = veo_args_alloc();
        args->set_u64(0, 1);
        std::uint64_t r1 = 0, r2 = 0;
        const std::uint64_t q1 = veo_call_async(c1, sym, args);
        args->set_u64(0, 2);
        const std::uint64_t q2 = veo_call_async(c2, sym, args);
        EXPECT_EQ(veo_call_wait_result(c2, q2, &r2), VEO_COMMAND_OK);
        EXPECT_EQ(veo_call_wait_result(c1, q1, &r1), VEO_COMMAND_OK);
        EXPECT_EQ(r1, 1u);
        EXPECT_EQ(r2, 2u);
        EXPECT_EQ(veo_context_close(c1), 0);
        EXPECT_EQ(veo_context_close(c2), 0);
        veo_args_free(args);
    });
}

} // namespace
} // namespace aurora::veo
