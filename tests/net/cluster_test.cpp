// aurora::net cluster tier:
//   * VH -> VH -> VE echo round trips on every calibrated link profile,
//   * remote memory (allocate/put/get/free) and buffer_ptr identity across
//     nodes (global ids),
//   * two-level scheduling with deterministic remote work stealing,
//   * remote-node VE kill -> heal with exactly-once execution and no
//     cross-tenant stall,
//   * terminal remote failure settles futures with target_failed_error.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "net/net.hpp"
#include "offload/offload.hpp"
#include "sim/platform.hpp"

namespace aurora::net {
namespace {

namespace fault = aurora::fault;
using ham::offload::backend_kind;
using ham::offload::buffer_ptr;
using ham::offload::run;
using ham::offload::runtime_options;
using ham::offload::target_failed_error;
using ham::offload::target_health;

int add(int a, int b) { return a + b; }

std::int64_t sum_cells(buffer_ptr<std::int64_t> data, std::uint64_t n) {
    std::int64_t total = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        total += data[i];
    }
    return total;
}

void inc_cell(buffer_ptr<std::int64_t> cell) {
    cell[0] = cell[0] + 1;
}

int which_node() {
    return static_cast<int>(ham::offload::target_context::current()->node());
}

runtime_options origin_options(int ves = 2) {
    runtime_options opt;
    opt.backend = backend_kind::loopback;
    opt.targets.assign(static_cast<std::size_t>(ves), 0);
    return opt;
}

class Cluster : public ::testing::Test {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

class ClusterLinks : public ::testing::TestWithParam<const char*> {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

/// offload::run with the platform handle exposed (cluster needs it).
void run_cluster(const runtime_options& opt, cluster_options copt,
                 const std::function<void(cluster&)>& body,
                 sim::time_ns deadline_ns = 120'000'000'000) {
    sim::platform plat(sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(deadline_ns);
    ASSERT_EQ(run(plat, opt, [&] {
        cluster c(plat, copt);
        body(c);
    }), 0);
}

TEST_P(ClusterLinks, EchoOnEveryNodeAndVe) {
    cluster_options copt;
    copt.nodes = 3;
    copt.ves_per_node = 2;
    copt.link = link_profile::by_name(GetParam());
    run_cluster(origin_options(2), copt, [&](cluster& c) {
        for (int vh = 0; vh < c.nodes(); ++vh) {
            for (int ve = 1; ve <= c.ves_per_node(); ++ve) {
                auto f = c.async(vh, ve, ham::f2f<&add>(10 * vh, ve));
                EXPECT_EQ(f.get(), 10 * vh + ve)
                    << "vh " << vh << " ve " << ve;
            }
        }
    });
}

TEST_P(ClusterLinks, RemoteVeSeesItsGlobalIdentity) {
    cluster_options copt;
    copt.nodes = 3;
    copt.ves_per_node = 2;
    copt.link = link_profile::by_name(GetParam());
    run_cluster(origin_options(2), copt, [&](cluster& c) {
        // VH k's VE i executes under the cluster-unique id k*V + i — the
        // node a buffer_ptr must carry to dereference there.
        for (int vh = 0; vh < c.nodes(); ++vh) {
            for (int ve = 1; ve <= c.ves_per_node(); ++ve) {
                EXPECT_EQ(c.async(vh, ve, ham::f2f<&which_node>()).get(),
                          c.global_id(vh, ve));
            }
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Profiles, ClusterLinks,
                         ::testing::Values("ib-hdr", "roce", "ethernet-tcp"),
                         [](const auto& param_info) {
                             std::string n = param_info.param;
                             for (auto& ch : n) {
                                 if (ch == '-') {
                                     ch = '_';
                                 }
                             }
                             return n;
                         });

TEST_F(Cluster, RemoteMemoryRoundTrip) {
    cluster_options copt;
    copt.nodes = 2;
    copt.ves_per_node = 2;
    run_cluster(origin_options(1), copt, [&](cluster& c) {
        constexpr std::uint64_t n = 1024;
        auto buf = c.allocate<std::int64_t>(1, 1, n);
        EXPECT_EQ(buf.node(), c.global_id(1, 1));
        std::vector<std::int64_t> host(n);
        std::int64_t expect = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            host[i] = static_cast<std::int64_t>(3 * i + 1);
            expect += host[i];
        }
        c.put(host.data(), 1, buf, n);
        // The offloaded sum reads the buffer on the remote VE itself.
        EXPECT_EQ(c.async(1, 1, ham::f2f<&sum_cells>(buf, n)).get(), expect);
        std::vector<std::int64_t> back(n, 0);
        c.get(1, buf, back.data(), n);
        EXPECT_EQ(back, host);
        c.free(1, buf);
    });
}

TEST_F(Cluster, FourByFourSkewedMixWithRemoteStealing) {
    // The acceptance-criteria shape: 4 nodes x 4 VEs, a skewed task mix
    // piled onto node 1, remote stealing spreads it across the cluster.
    cluster_options copt;
    copt.nodes = 4;
    copt.ves_per_node = 4;
    run_cluster(origin_options(4), copt, [&](cluster& c) {
        cluster_executor_config cfg;
        cfg.policy = sched::placement_policy::work_stealing;
        cfg.scope = sched::steal_scope::local_then_remote;
        cfg.window = 2;
        cfg.remote_steal_threshold = 2;
        cluster_executor ex(c, cfg);
        for (int i = 0; i < 96; ++i) {
            ex.submit(ham::f2f<&add>(i, 1), /*affinity_vh=*/1);
        }
        ex.wait_all();
        const auto& st = ex.stats();
        EXPECT_EQ(st.completed, 96u);
        EXPECT_EQ(st.failed, 0u);
        EXPECT_GT(st.steals_remote, 0u);
        std::uint64_t off_node1 = 0;
        for (std::size_t e = 0; e < ex.num_engines(); ++e) {
            off_node1 += st.per_engine[e];
        }
        EXPECT_EQ(off_node1, 96u);
    }, 600'000'000'000);
}

TEST_F(Cluster, LocalOnlyScopeNeverCrossesALink) {
    cluster_options copt;
    copt.nodes = 3;
    copt.ves_per_node = 2;
    run_cluster(origin_options(2), copt, [&](cluster& c) {
        cluster_executor_config cfg;
        cfg.scope = sched::steal_scope::local_only;
        cfg.window = 2;
        cluster_executor ex(c, cfg);
        for (int i = 0; i < 24; ++i) {
            ex.submit(ham::f2f<&add>(i, 0), /*affinity_vh=*/1);
        }
        ex.wait_all();
        EXPECT_EQ(ex.stats().completed, 24u);
        EXPECT_EQ(ex.stats().steals_remote, 0u);
        // Every completion happened on node 1's engines.
        for (std::size_t e = 0; e < ex.num_engines(); ++e) {
            if (e != ex.engine_index(1, 1) && e != ex.engine_index(1, 2)) {
                EXPECT_EQ(ex.stats().per_engine[e], 0u) << "engine " << e;
            }
        }
    }, 600'000'000'000);
}

std::vector<std::uint64_t> steal_fingerprint() {
    std::vector<std::uint64_t> order;
    cluster_options copt;
    copt.nodes = 3;
    copt.ves_per_node = 2;
    sim::platform plat(sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(600'000'000'000);
    EXPECT_EQ(run(plat, origin_options(2), [&] {
        cluster c(plat, copt);
        cluster_executor_config cfg;
        cfg.scope = sched::steal_scope::local_then_remote;
        cfg.window = 2;
        cfg.remote_steal_threshold = 2;
        cluster_executor ex(c, cfg);
        for (int i = 0; i < 48; ++i) {
            ex.submit(ham::f2f<&add>(i, i), /*affinity_vh=*/1);
        }
        ex.wait_all();
        order = ex.completion_order();
    }), 0);
    return order;
}

TEST_F(Cluster, RemoteWorkStealingIsDeterministic) {
    const std::vector<std::uint64_t> a = steal_fingerprint();
    const std::vector<std::uint64_t> b = steal_fingerprint();
    ASSERT_EQ(a.size(), 48u);
    EXPECT_EQ(a, b) << "completion order must not vary across identical runs";
}

TEST_F(Cluster, RemoteVeKillHealsExactlyOnceWithoutCrossTenantStall) {
    cluster_options copt;
    copt.nodes = 2;
    copt.ves_per_node = 2;
    copt.remote.reply_timeout_ns = 100'000;
    copt.remote.max_retries = 2;
    copt.remote.recovery.enabled = true;
    copt.remote.recovery.backoff_ns = 50'000;
    copt.remote.recovery_streak = 4;
    // Kill VH1's VE1 — global id 1*2+1 = 3 — after two routed messages.
    fault::injector::instance().kill_after_messages(3, 2);
    run_cluster(origin_options(1), copt, [&](cluster& c) {
        auto cell = c.allocate<std::int64_t>(1, 1, 1);
        const std::int64_t zero = 0;
        c.put(&zero, 1, cell, 1);
        std::vector<ham::offload::future<void>> futs;
        futs.reserve(12);
        for (int i = 0; i < 12; ++i) {
            futs.push_back(c.async(1, 1, ham::f2f<&inc_cell>(cell)));
        }
        // The sibling tenant (1,2) keeps serving while (1,1) recovers.
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(c.async(1, 2, ham::f2f<&add>(i, 7)).get(), i + 7);
        }
        for (auto& f : futs) {
            f.get();
        }
        // Exactly-once: the replay replays only never-executed messages.
        std::int64_t count = -1;
        c.get(1, cell, &count, 1);
        EXPECT_EQ(count, 12);
        EXPECT_EQ(c.engine_health(1, 1), target_health::healthy);
        EXPECT_EQ(c.observed_epoch(1, 1), 1u); // respawned incarnation
        EXPECT_EQ(c.observed_epoch(1, 2), 0u); // sibling untouched
        c.free(1, cell);
    }, 600'000'000'000);
    EXPECT_EQ(fault::injector::instance().stats().kills, 1u);
    EXPECT_EQ(fault::injector::instance().stats().revivals, 1u);
}

TEST_F(Cluster, MultiNodeKillScheduleHealsEveryNode) {
    // Two VEs on two different remote nodes die mid-run — VH1's VE1
    // (gid 3) and VH2's VE1 (gid 5). Each gateway heals its own VE
    // independently; work on every engine still completes exactly once.
    cluster_options copt;
    copt.nodes = 3;
    copt.ves_per_node = 2;
    copt.remote.reply_timeout_ns = 100'000;
    copt.remote.max_retries = 2;
    copt.remote.recovery.enabled = true;
    copt.remote.recovery.backoff_ns = 50'000;
    copt.remote.recovery_streak = 4;
    fault::injector::instance().kill_after_messages(3, 2);
    fault::injector::instance().kill_after_messages(5, 3);
    run_cluster(origin_options(1), copt, [&](cluster& c) {
        auto cell1 = c.allocate<std::int64_t>(1, 1, 1);
        auto cell2 = c.allocate<std::int64_t>(2, 1, 1);
        const std::int64_t zero = 0;
        c.put(&zero, 1, cell1, 1);
        c.put(&zero, 2, cell2, 1);
        std::vector<ham::offload::future<void>> futs;
        for (int i = 0; i < 10; ++i) {
            futs.push_back(c.async(1, 1, ham::f2f<&inc_cell>(cell1)));
            futs.push_back(c.async(2, 1, ham::f2f<&inc_cell>(cell2)));
        }
        // The untouched VEs on both nodes keep serving throughout.
        for (int i = 0; i < 6; ++i) {
            EXPECT_EQ(c.async(1, 2, ham::f2f<&add>(i, 1)).get(), i + 1);
            EXPECT_EQ(c.async(2, 2, ham::f2f<&add>(i, 2)).get(), i + 2);
        }
        for (auto& f : futs) {
            f.get();
        }
        std::int64_t count1 = -1, count2 = -1;
        c.get(1, cell1, &count1, 1);
        c.get(2, cell2, &count2, 1);
        EXPECT_EQ(count1, 10);
        EXPECT_EQ(count2, 10);
        EXPECT_EQ(c.engine_health(1, 1), target_health::healthy);
        EXPECT_EQ(c.engine_health(2, 1), target_health::healthy);
        EXPECT_EQ(c.observed_epoch(1, 1), 1u);
        EXPECT_EQ(c.observed_epoch(2, 1), 1u);
        c.free(1, cell1);
        c.free(2, cell2);
    }, 600'000'000'000);
    EXPECT_EQ(fault::injector::instance().stats().kills, 2u);
    EXPECT_EQ(fault::injector::instance().stats().revivals, 2u);
}

TEST_F(Cluster, TerminalRemoteFailureSettlesFutures) {
    cluster_options copt;
    copt.nodes = 2;
    copt.ves_per_node = 2;
    copt.remote.reply_timeout_ns = 100'000;
    copt.remote.max_retries = 1;
    // recovery disabled: the death is terminal.
    fault::injector::instance().kill_after_messages(3, 1);
    run_cluster(origin_options(1), copt, [&](cluster& c) {
        auto f1 = c.async(1, 1, ham::f2f<&add>(1, 1));
        auto f2 = c.async(1, 1, ham::f2f<&add>(2, 2));
        EXPECT_THROW(
            {
                f1.get();
                f2.get();
            },
            target_failed_error);
        // The node degrades but its healthy VE keeps working.
        EXPECT_EQ(c.engine_health(1, 1), target_health::failed);
        EXPECT_EQ(c.async(1, 2, ham::f2f<&add>(20, 3)).get(), 23);
        EXPECT_EQ(c.status(1).health, target_health::degraded);
        EXPECT_EQ(c.status(1).ves_failed, 1);
    }, 600'000'000'000);
}

TEST_F(Cluster, NodeStatusRollup) {
    cluster_options copt;
    copt.nodes = 3;
    copt.ves_per_node = 2;
    run_cluster(origin_options(2), copt, [&](cluster& c) {
        for (int vh = 0; vh < 3; ++vh) {
            const node_status s = c.status(vh);
            EXPECT_EQ(s.health, target_health::healthy) << "vh " << vh;
            EXPECT_EQ(s.ves_total, 2);
            EXPECT_EQ(s.ves_healthy, 2);
        }
        EXPECT_EQ(c.outstanding(1), 0u);
    });
}

} // namespace
} // namespace aurora::net
