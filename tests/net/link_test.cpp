// aurora::net inter_node_channel — calibration, timing, backpressure.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "net/link.hpp"
#include "sim/engine.hpp"

namespace aurora::net {
namespace {

std::vector<std::byte> frame_of(std::size_t n) {
    return std::vector<std::byte>(n, std::byte{0x5A});
}

/// Run `body` as a simulated process (the channel reads sim::now()).
void in_sim(const std::function<void()>& body) {
    sim::simulation s;
    s.spawn("test", body);
    s.run();
}

TEST(LinkProfile, PresetsAndLookup) {
    const link_profile ib = link_profile::ib_hdr();
    EXPECT_EQ(ib.name, "ib-hdr");
    EXPECT_LT(ib.half_rtt_ns, link_profile::roce().half_rtt_ns);
    EXPECT_LT(link_profile::roce().half_rtt_ns,
              link_profile::ethernet_tcp().half_rtt_ns);
    EXPECT_GT(ib.bandwidth_gib, link_profile::ethernet_tcp().bandwidth_gib);
    EXPECT_EQ(link_profile::by_name("ib-hdr").name, "ib-hdr");
    EXPECT_EQ(link_profile::by_name("roce").name, "roce");
    EXPECT_EQ(link_profile::by_name("tcp").name, "ethernet-tcp");
}

TEST(LinkProfile, EthernetTcpMatchesCostModel) {
    // The TCP profile is anchored to the generic TCP backend's calibration
    // so a 1-node cluster over "ethernet-tcp" and the tcp backend agree.
    const sim::cost_model cm;
    const link_profile p = link_profile::ethernet_tcp();
    EXPECT_EQ(p.half_rtt_ns, cm.tcp_half_rtt_ns);
    EXPECT_EQ(p.per_msg_ns, cm.tcp_per_msg_ns);
    EXPECT_DOUBLE_EQ(p.bandwidth_gib, cm.tcp_bandwidth_gib);
}

TEST(Link, FrameArrivesAfterModeledLatency) {
    in_sim([] {
        link_profile p;
        p.half_rtt_ns = 1'000;
        p.per_msg_ns = 100;
        p.bandwidth_gib = 1.0;
        p.window = 4;
        inter_node_channel ch(p, 1);
        ASSERT_TRUE(ch.try_send(0, frame_of(0)));
        std::vector<std::byte> out;
        EXPECT_FALSE(ch.try_recv(0, out)); // not before per_msg + half_rtt
        sim::advance(1'099);
        EXPECT_FALSE(ch.try_recv(0, out));
        sim::advance(1);
        EXPECT_TRUE(ch.try_recv(0, out));
        EXPECT_TRUE(out.empty());
    });
}

TEST(Link, PayloadBytesPayBandwidth) {
    in_sim([] {
        link_profile p;
        p.half_rtt_ns = 0;
        p.per_msg_ns = 0;
        p.bandwidth_gib = 1.0;
        inter_node_channel ch(p, 1);
        const std::size_t bytes = 1 << 20; // 1 MiB at 1 GiB/s ~= 0.977 ms
        ASSERT_TRUE(ch.try_send(0, frame_of(bytes)));
        const sim::duration_ns expect = sim::transfer_ns(bytes, 1.0);
        std::vector<std::byte> out;
        sim::advance(expect - 1);
        EXPECT_FALSE(ch.try_recv(0, out));
        sim::advance(1);
        ASSERT_TRUE(ch.try_recv(0, out));
        EXPECT_EQ(out.size(), bytes);
    });
}

TEST(Link, WireOccupancySerialisesBackToBackFrames) {
    in_sim([] {
        link_profile p;
        p.half_rtt_ns = 500;
        p.per_msg_ns = 1'000;
        p.bandwidth_gib = 1.0;
        p.window = 8;
        inter_node_channel ch(p, 1);
        // Two frames posted at t=0: the second serialises behind the first,
        // so it arrives one per_msg later.
        ASSERT_TRUE(ch.try_send(0, frame_of(0)));
        ASSERT_TRUE(ch.try_send(0, frame_of(0)));
        std::vector<std::byte> out;
        sim::advance(1'500); // first: 1000 serialise + 500 propagate
        EXPECT_TRUE(ch.try_recv(0, out));
        EXPECT_FALSE(ch.try_recv(0, out));
        sim::advance(1'000);
        EXPECT_TRUE(ch.try_recv(0, out));
    });
}

TEST(Link, WindowBackpressures) {
    in_sim([] {
        link_profile p;
        p.half_rtt_ns = 1'000;
        p.per_msg_ns = 10;
        p.window = 2;
        inter_node_channel ch(p, 1);
        EXPECT_TRUE(ch.try_send(0, frame_of(8)));
        EXPECT_TRUE(ch.try_send(0, frame_of(8)));
        EXPECT_FALSE(ch.try_send(0, frame_of(8))); // window full
        EXPECT_EQ(ch.in_flight(0), 2u);
        sim::advance(10'000);
        std::vector<std::byte> out;
        ASSERT_TRUE(ch.try_recv(0, out));
        EXPECT_TRUE(ch.try_send(0, frame_of(8))); // slot freed
    });
}

TEST(Link, DirectionsAreIndependent) {
    in_sim([] {
        link_profile p;
        p.half_rtt_ns = 100;
        p.per_msg_ns = 10;
        p.window = 1;
        inter_node_channel ch(p, 1);
        EXPECT_TRUE(ch.try_send(0, frame_of(1)));
        EXPECT_FALSE(ch.try_send(0, frame_of(1)));
        EXPECT_TRUE(ch.try_send(1, frame_of(2))); // reverse lane unaffected
        sim::advance(10'000);
        std::vector<std::byte> a;
        std::vector<std::byte> b;
        EXPECT_TRUE(ch.try_recv(0, a));
        EXPECT_TRUE(ch.try_recv(1, b));
        EXPECT_EQ(a.size(), 1u);
        EXPECT_EQ(b.size(), 2u);
    });
}

TEST(Link, DeliveryIsFifoPerDirection) {
    in_sim([] {
        link_profile p;
        p.half_rtt_ns = 0;
        p.per_msg_ns = 1;
        p.window = 8;
        inter_node_channel ch(p, 1);
        for (std::size_t n = 1; n <= 4; ++n) {
            ASSERT_TRUE(ch.try_send(0, frame_of(n)));
        }
        sim::advance(1'000'000);
        std::vector<std::byte> out;
        for (std::size_t n = 1; n <= 4; ++n) {
            ASSERT_TRUE(ch.try_recv(0, out));
            EXPECT_EQ(out.size(), n);
        }
        EXPECT_FALSE(ch.try_recv(0, out));
    });
}

} // namespace
} // namespace aurora::net
