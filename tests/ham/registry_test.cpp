// Tests of the cross-binary handler/function translation (paper Fig. 6).
#include "ham/handler_registry.hpp"

#include <gtest/gtest.h>

#include "ham/active_msg.hpp"
#include "ham/execution_context.hpp"
#include "ham/functor.hpp"
#include "ham/msg.hpp"
#include "util/check.hpp"

namespace ham {
namespace {

// A couple of distinct message types to populate the catalog.
struct probe_functor_a {
    int x;
    int operator()() const { return x + 1; }
};
struct probe_functor_b {
    double y;
    double operator()() const { return y * 2.0; }
};
using msg_a = active_msg<probe_functor_a>;
using msg_b = active_msg<probe_functor_b>;

int reg_test_fn_one(int v) {
    return v * 3;
}
int reg_test_fn_two(int v) {
    return v - 7;
}
HAM_REGISTER_FUNCTION(reg_test_fn_one);
HAM_REGISTER_FUNCTION(reg_test_fn_two);

handler_registry host_like() {
    return handler_registry::build({.address_base = 0x400000, .layout_seed = 0});
}
handler_registry target_like() {
    return handler_registry::build(
        {.address_base = 0x7E0000000000, .layout_seed = 0xDECAFBAD});
}

TEST(HandlerRegistry, CatalogNotEmpty) {
    // Force instantiation of the message types.
    (void)msg_a::catalog_index();
    (void)msg_b::catalog_index();
    EXPECT_GE(message_catalog::instance().entries().size(), 2u);
}

TEST(HandlerRegistry, SameKeyCountInBothImages) {
    const auto host = host_like();
    const auto target = target_like();
    EXPECT_EQ(host.handler_count(), target.handler_count());
    EXPECT_GT(host.handler_count(), 0u);
}

TEST(HandlerRegistry, KeysAgreeAcrossImagesDespiteDifferentLayouts) {
    const auto host = host_like();
    const auto target = target_like();
    // For every key, both images must name the same message type — the
    // lexicographic sort of typeid names makes keys globally valid.
    for (handler_key k = 0; k < host.handler_count(); ++k) {
        EXPECT_EQ(host.name_of_key(k), target.name_of_key(k)) << "key " << k;
    }
}

TEST(HandlerRegistry, LocalAddressesDifferBetweenImages) {
    const auto host = host_like();
    const auto target = target_like();
    const handler_key k = host.key_of_catalog_index(msg_a::catalog_index());
    EXPECT_NE(host.address_of_key(k), target.address_of_key(k));
}

TEST(HandlerRegistry, AddressKeyRoundTrip) {
    const auto reg = target_like();
    for (handler_key k = 0; k < reg.handler_count(); ++k) {
        const std::uint64_t addr = reg.address_of_key(k);
        EXPECT_EQ(reg.key_of_address(addr), k);
    }
}

TEST(HandlerRegistry, UnknownKeyThrows) {
    const auto reg = host_like();
    EXPECT_THROW((void)reg.address_of_key(handler_key(reg.handler_count())),
                 aurora::check_error);
    EXPECT_THROW((void)reg.name_of_key(invalid_handler_key), aurora::check_error);
}

TEST(HandlerRegistry, BogusAddressThrows) {
    const auto reg = host_like();
    EXPECT_THROW((void)reg.key_of_address(0x123), aurora::check_error);
    EXPECT_THROW((void)reg.key_of_address(0x400000 + 3), aurora::check_error);
}

TEST(HandlerRegistry, KeysAreSortedByName) {
    const auto reg = host_like();
    for (handler_key k = 1; k < reg.handler_count(); ++k) {
        EXPECT_LT(reg.name_of_key(k - 1), reg.name_of_key(k));
    }
}

TEST(HandlerRegistry, MessageWrittenByHostExecutesInTargetImage) {
    const auto host = host_like();
    const auto target = target_like();

    alignas(16) std::byte buf[512];
    const std::size_t len = ham::write_message(host, buf, sizeof(buf),
                                               probe_functor_a{41});
    ASSERT_GT(len, 0u);

    int result = 0;
    std::size_t result_size = 0;
    execute_message(target, buf, &result, sizeof(result), &result_size);
    EXPECT_EQ(result_size, sizeof(int));
    EXPECT_EQ(result, 42);
}

TEST(HandlerRegistry, FunctionKeysAgreeAcrossImages) {
    const auto host = host_like();
    const auto target = target_like();
    ASSERT_GE(host.function_count(), 2u);
    const auto k1 =
        host.key_of_function(reinterpret_cast<const void*>(&reg_test_fn_one));
    // Both images resolve the key to a pointer; in the simulation both images
    // contain the same code, so the pointers are equal — the important
    // property is that the *translation* agrees.
    EXPECT_EQ(target.function_of_key(k1),
              reinterpret_cast<void*>(&reg_test_fn_one));
}

TEST(HandlerRegistry, UnregisteredFunctionThrows) {
    const auto host = host_like();
    // A function that exists but was never registered.
    auto unregistered = +[](int v) { return v; };
    EXPECT_THROW((void)host.key_of_function(reinterpret_cast<const void*>(
                     unregistered)),
                 aurora::check_error);
}

TEST(HandlerRegistry, FunctionKeyOutOfRangeThrows) {
    const auto host = host_like();
    EXPECT_THROW((void)host.function_of_key(
                     function_key(host.function_count())),
                 aurora::check_error);
}

TEST(ExecutionContext, ScopeInstallsAndRestores) {
    const auto host = host_like();
    EXPECT_FALSE(execution_context::installed());
    {
        execution_context::scope s(host);
        EXPECT_TRUE(execution_context::installed());
        EXPECT_EQ(&execution_context::registry(), &host);
        {
            const auto target = target_like();
            execution_context::scope inner(target);
            EXPECT_EQ(&execution_context::registry(), &target);
        }
        EXPECT_EQ(&execution_context::registry(), &host);
    }
    EXPECT_FALSE(execution_context::installed());
}

TEST(ExecutionContext, RegistryWithoutScopeThrows) {
    EXPECT_THROW((void)execution_context::registry(), aurora::check_error);
}

} // namespace
} // namespace ham
