#include "ham/active_msg.hpp"

#include <gtest/gtest.h>

#include "ham/handler_registry.hpp"
#include "ham/msg.hpp"
#include "util/check.hpp"

namespace ham {
namespace {

struct add_functor {
    int a;
    int b;
    int operator()() const { return a + b; }
};

struct void_functor {
    int* counter; // host-pointer payload is fine for these in-process tests
    void operator()() const { ++*counter; }
};

struct throwing_functor {
    int operator()() const { throw std::runtime_error("boom"); }
};

struct big_result_functor {
    struct payload {
        double values[8];
    };
    payload operator()() const {
        payload p{};
        for (int i = 0; i < 8; ++i) p.values[i] = i * 1.5;
        return p;
    }
};

handler_registry make_reg() {
    return handler_registry::build({.address_base = 0x400000, .layout_seed = 0});
}

TEST(ActiveMsg, ExecuteProducesResult) {
    const auto reg = make_reg();
    alignas(16) std::byte buf[256];
    (void)write_message(reg, buf, sizeof(buf), add_functor{20, 22});
    int out = 0;
    std::size_t out_size = 0;
    execute_message(reg, buf, &out, sizeof(out), &out_size);
    EXPECT_EQ(out, 42);
    EXPECT_EQ(out_size, sizeof(int));
}

TEST(ActiveMsg, VoidResultHasZeroSize) {
    const auto reg = make_reg();
    int counter = 0;
    alignas(16) std::byte buf[256];
    (void)write_message(reg, buf, sizeof(buf), void_functor{&counter});
    std::size_t out_size = 99;
    execute_message(reg, buf, nullptr, 0, &out_size);
    EXPECT_EQ(counter, 1);
    EXPECT_EQ(out_size, 0u);
}

TEST(ActiveMsg, MessageSizeIsHeaderPlusFunctor) {
    const auto reg = make_reg();
    alignas(16) std::byte buf[256];
    const std::size_t len = write_message(reg, buf, sizeof(buf), add_functor{1, 2});
    EXPECT_EQ(len, sizeof(active_msg<add_functor>));
    EXPECT_GE(len, sizeof(handler_key) + sizeof(add_functor));
}

TEST(ActiveMsg, BufferTooSmallThrows) {
    const auto reg = make_reg();
    std::byte buf[4];
    EXPECT_THROW((void)write_message(reg, buf, sizeof(buf), add_functor{1, 2}),
                 aurora::check_error);
}

TEST(ActiveMsg, ResultBufferTooSmallThrows) {
    const auto reg = make_reg();
    alignas(16) std::byte buf[256];
    (void)write_message(reg, buf, sizeof(buf), add_functor{1, 2});
    int out;
    std::size_t out_size = 0;
    EXPECT_THROW(execute_message(reg, buf, &out, 2, &out_size),
                 aurora::check_error);
}

TEST(ActiveMsg, ExceptionsPropagate) {
    const auto reg = make_reg();
    alignas(16) std::byte buf[256];
    (void)write_message(reg, buf, sizeof(buf), throwing_functor{});
    int out;
    std::size_t out_size = 0;
    EXPECT_THROW(execute_message(reg, buf, &out, sizeof(out), &out_size),
                 std::runtime_error);
}

TEST(ActiveMsg, LargeTriviallyCopyableResult) {
    const auto reg = make_reg();
    alignas(16) std::byte buf[256];
    (void)write_message(reg, buf, sizeof(buf), big_result_functor{});
    big_result_functor::payload out{};
    std::size_t out_size = 0;
    execute_message(reg, buf, &out, sizeof(out), &out_size);
    EXPECT_EQ(out_size, sizeof(out));
    EXPECT_DOUBLE_EQ(out.values[7], 10.5);
}

TEST(ActiveMsg, PeekKeyMatchesRegistry) {
    const auto reg = make_reg();
    alignas(16) std::byte buf[256];
    (void)write_message(reg, buf, sizeof(buf), add_functor{0, 0});
    const handler_key key = peek_key(buf);
    EXPECT_EQ(key,
              reg.key_of_catalog_index(active_msg<add_functor>::catalog_index()));
}

TEST(ActiveMsg, DistinctTypesGetDistinctKeys) {
    const auto reg = make_reg();
    const auto ka =
        reg.key_of_catalog_index(active_msg<add_functor>::catalog_index());
    const auto kb =
        reg.key_of_catalog_index(active_msg<void_functor>::catalog_index());
    EXPECT_NE(ka, kb);
}

} // namespace
} // namespace ham
