// arg_pack: the trivially copyable tuple substitute carrying functor
// arguments inside active messages.
#include "ham/arg_pack.hpp"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "ham/functor.hpp"
#include "ham/migratable.hpp"

namespace ham {
namespace {

TEST(ArgPack, EmptyPack) {
    auto p = make_arg_pack();
    static_assert(std::is_trivially_copyable_v<decltype(p)>);
    int called = 0;
    apply_pack([&] { ++called; }, p);
    EXPECT_EQ(called, 1);
}

TEST(ArgPack, OrderPreserved) {
    auto p = make_arg_pack(1, 2.5, 'x');
    const std::string s =
        apply_pack([](int a, double b, char c) {
            return std::to_string(a) + "/" + std::to_string(b) + "/" + c;
        }, p);
    EXPECT_EQ(s.substr(0, 2), "1/");
    EXPECT_EQ(s.back(), 'x');
}

TEST(ArgPack, TriviallyCopyableWhenElementsAre) {
    static_assert(std::is_trivially_copyable_v<arg_pack<int, double, char>>);
    static_assert(
        std::is_trivially_copyable_v<arg_pack<migratable<std::string>>>);
}

TEST(ArgPack, ByteWiseCopyPreservesValues) {
    auto p = make_arg_pack(std::uint64_t{42}, 3.25f);
    alignas(alignof(decltype(p))) std::byte raw[sizeof(p)];
    std::memcpy(raw, &p, sizeof(p));
    decltype(p) q;
    std::memcpy(&q, raw, sizeof(q));
    apply_pack([](std::uint64_t a, float b) {
        EXPECT_EQ(a, 42u);
        EXPECT_FLOAT_EQ(b, 3.25f);
    }, q);
}

TEST(ArgPack, DecayOfReferencesAndArrays) {
    int x = 7;
    int& ref = x;
    auto p = make_arg_pack(ref); // captured by value
    x = 99;
    apply_pack([](int v) { EXPECT_EQ(v, 7); }, p);
}

// --- f2f arity sweep ---------------------------------------------------------

int fn0() { return 10; }
int fn1(int a) { return a; }
int fn2(int a, int b) { return a + b; }
int fn3(int a, int b, int c) { return a + b + c; }
int fn4(int a, int b, int c, int d) { return a + b + c + d; }
int fn6(int a, int b, int c, int d, int e, int f) {
    return a + b + c + d + e + f;
}

TEST(F2FArity, ZeroThroughSixArguments) {
    EXPECT_EQ(f2f<&fn0>()(), 10);
    EXPECT_EQ(f2f<&fn1>(1)(), 1);
    EXPECT_EQ(f2f<&fn2>(1, 2)(), 3);
    EXPECT_EQ(f2f<&fn3>(1, 2, 3)(), 6);
    EXPECT_EQ(f2f<&fn4>(1, 2, 3, 4)(), 10);
    EXPECT_EQ(f2f<&fn6>(1, 2, 3, 4, 5, 6)(), 21);
}

TEST(F2FArity, ImplicitConversionsAtBinding) {
    // short/char arguments convert into the int parameters at binding time.
    const short s = 3;
    const char c = 4;
    EXPECT_EQ(f2f<&fn2>(s, c)(), 7);
}

double scaled(double base, migratable<std::string> tag) {
    return base * double(tag.get().size());
}

TEST(F2FArity, MigratableArgumentsCompose) {
    auto f = f2f<&scaled>(2.0, migratable<std::string>(std::string("abcd")));
    static_assert(std::is_trivially_copyable_v<decltype(f)>);
    EXPECT_DOUBLE_EQ(f(), 8.0);
}

} // namespace
} // namespace ham
