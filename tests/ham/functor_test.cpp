#include "ham/functor.hpp"

#include <gtest/gtest.h>

#include "ham/active_msg.hpp"
#include "ham/msg.hpp"
#include "util/check.hpp"

namespace ham {
namespace {

double scale(double x, double factor) {
    return x * factor;
}
int negate(int v) {
    return -v;
}
void bump(int* p) {
    ++*p;
}
HAM_REGISTER_FUNCTION(scale);
HAM_REGISTER_FUNCTION(negate);

handler_registry host_like() {
    return handler_registry::build({.address_base = 0x400000, .layout_seed = 0});
}
handler_registry target_like() {
    return handler_registry::build(
        {.address_base = 0x7E0000000000, .layout_seed = 0xABCDEF});
}

TEST(StaticF2F, InvokesBoundFunction) {
    auto f = f2f<&scale>(3.0, 4.0);
    EXPECT_DOUBLE_EQ(f(), 12.0);
}

TEST(StaticF2F, VoidFunction) {
    int counter = 0;
    auto f = f2f<&bump>(&counter);
    f();
    EXPECT_EQ(counter, 1);
}

TEST(StaticF2F, IsTriviallyCopyable) {
    auto f = f2f<&scale>(1.0, 2.0);
    static_assert(std::is_trivially_copyable_v<decltype(f)>);
}

TEST(StaticF2F, TravelsThroughActiveMessage) {
    const auto host = host_like();
    const auto target = target_like();
    alignas(16) std::byte buf[256];
    (void)write_message(host, buf, sizeof(buf), f2f<&scale>(6.0, 7.0));
    double out = 0;
    std::size_t out_size = 0;
    execute_message(target, buf, &out, sizeof(out), &out_size);
    EXPECT_DOUBLE_EQ(out, 42.0);
}

TEST(DynamicF2F, RequiresExecutionContext) {
    EXPECT_THROW((void)f2f(&scale, 1.0, 2.0), aurora::check_error);
}

TEST(DynamicF2F, InvokesThroughTranslation) {
    const auto host = host_like();
    execution_context::scope s(host);
    auto f = f2f(&scale, 5.0, 2.0);
    EXPECT_DOUBLE_EQ(f(), 10.0);
}

TEST(DynamicF2F, CrossImageExecution) {
    const auto host = host_like();
    const auto target = target_like();

    alignas(16) std::byte buf[256];
    {
        // Sender encodes the function pointer to a key in the host image…
        execution_context::scope sender(host);
        (void)write_message(host, buf, sizeof(buf), f2f(&negate, 21));
    }
    // …and the receiver translates the key back through *its* image.
    int out = 0;
    std::size_t out_size = 0;
    {
        execution_context::scope receiver(target);
        execute_message(target, buf, &out, sizeof(out), &out_size);
    }
    EXPECT_EQ(out, -21);
}

TEST(DynamicF2F, UnregisteredFunctionThrows) {
    const auto host = host_like();
    execution_context::scope s(host);
    // Function-local statics cannot be pre-registered.
    static auto local_fn = +[](int v) { return v; };
    EXPECT_THROW((void)f2f(local_fn, 1), aurora::check_error);
}

TEST(DynamicF2F, ArgumentConversionFollowsSignature) {
    const auto host = host_like();
    execution_context::scope s(host);
    // int literal converts to the double parameter.
    auto f = f2f(&scale, 2, 3.5f);
    EXPECT_DOUBLE_EQ(f(), 7.0);
}

TEST(DynamicF2F, MessageTypeSharedBySignature) {
    // Two different functions with the same signature produce the same
    // message type; the function identity travels in the key.
    auto fa = f2f<&scale>(1.0, 1.0);
    using msg_scale = active_msg<decltype(fa)>;
    const auto host = host_like();
    execution_context::scope s(host);
    auto f1 = f2f(&negate, 1);
    auto f2 = f2f(&negate, 2);
    static_assert(std::is_same_v<decltype(f1), decltype(f2)>);
    (void)msg_scale::catalog_index();
}

} // namespace
} // namespace ham
