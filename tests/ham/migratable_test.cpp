#include "ham/migratable.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ham {
namespace {

TEST(Migratable, TrivialTypePassThrough) {
    migratable<int> m(42);
    EXPECT_EQ(m.get(), 42);
    EXPECT_EQ(static_cast<int>(m), 42);
    EXPECT_EQ(m.packed_size(), sizeof(int));
}

TEST(Migratable, StructPassThrough) {
    struct point {
        double x, y;
    };
    migratable<point> m(point{1.5, -2.5});
    const point p = m.get();
    EXPECT_DOUBLE_EQ(p.x, 1.5);
    EXPECT_DOUBLE_EQ(p.y, -2.5);
}

TEST(Migratable, StringRoundTrip) {
    migratable<std::string> m(std::string("hello aurora"));
    EXPECT_EQ(m.get(), "hello aurora");
    EXPECT_EQ(m.packed_size(), 12u);
}

TEST(Migratable, EmptyString) {
    migratable<std::string> m(std::string{});
    EXPECT_EQ(m.get(), "");
    EXPECT_EQ(m.packed_size(), 0u);
}

TEST(Migratable, StringWithEmbeddedNulls) {
    std::string s("a\0b", 3);
    migratable<std::string> m(s);
    EXPECT_EQ(m.get(), s);
}

TEST(Migratable, StringTooLargeThrows) {
    const std::string big(300, 'x');
    EXPECT_THROW((migratable<std::string, 256>(big)), aurora::check_error);
    // A larger capacity accommodates it.
    migratable<std::string, 512> ok(big);
    EXPECT_EQ(ok.get(), big);
}

TEST(Migratable, VectorRoundTrip) {
    std::vector<double> v{1.0, 2.0, 3.0};
    migratable<std::vector<double>> m(v);
    EXPECT_EQ(m.get(), v);
}

TEST(Migratable, EmptyVector) {
    migratable<std::vector<int>> m(std::vector<int>{});
    EXPECT_TRUE(m.get().empty());
}

TEST(Migratable, VectorCapacityEnforced) {
    std::vector<std::uint64_t> v(100, 7); // 800 B
    EXPECT_THROW((migratable<std::vector<std::uint64_t>, 256>(v)),
                 aurora::check_error);
}

TEST(Migratable, TriviallyCopyableItself) {
    static_assert(std::is_trivially_copyable_v<migratable<std::string>>);
    static_assert(std::is_trivially_copyable_v<migratable<std::vector<int>>>);
    // Byte-wise copies preserve the payload (what message transport does).
    migratable<std::string> a(std::string("move me"));
    alignas(alignof(migratable<std::string>)) std::byte raw[sizeof(a)];
    std::memcpy(raw, &a, sizeof(a));
    migratable<std::string> b;
    std::memcpy(&b, raw, sizeof(b));
    EXPECT_EQ(b.get(), "move me");
}

TEST(Migratable, DefaultConstructedUnpacksDefault) {
    migratable<std::string> m;
    EXPECT_EQ(m.get(), "");
}

TEST(Migratable, PairOfComplexTypes) {
    using payload = std::pair<std::string, std::vector<int>>;
    payload p{"label", {1, 2, 3}};
    migratable<payload> m(p);
    const payload out = m.get();
    EXPECT_EQ(out.first, "label");
    EXPECT_EQ(out.second, (std::vector<int>{1, 2, 3}));
}

TEST(Migratable, PairCapacityEnforced) {
    using payload = std::pair<std::string, std::string>;
    payload p{std::string(200, 'a'), std::string(200, 'b')};
    EXPECT_THROW((migratable<payload, 256>(p)), aurora::check_error);
    migratable<payload, 512> ok(p);
    EXPECT_EQ(ok.get().second, std::string(200, 'b'));
}

TEST(Migratable, NestedPair) {
    using inner = std::pair<std::string, std::string>;
    using outer = std::pair<inner, std::vector<double>>;
    outer o{{"x", "y"}, {1.5, 2.5}};
    migratable<outer, 512> m(o);
    EXPECT_EQ(m.get().first.second, "y");
    EXPECT_EQ(m.get().second[1], 2.5);
}

} // namespace
} // namespace ham
