#include "util/env.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

namespace aurora {
namespace {

class EnvTest : public ::testing::Test {
protected:
    void SetEnv(const char* name, const char* value) {
        ASSERT_EQ(setenv(name, value, 1), 0);
        names_.push_back(name);
    }
    void TearDown() override {
        for (const char* n : names_) unsetenv(n);
    }
    std::vector<const char*> names_;
};

TEST_F(EnvTest, MissingReturnsNullopt) {
    unsetenv("HAM_AURORA_TEST_MISSING");
    EXPECT_FALSE(env_string("HAM_AURORA_TEST_MISSING").has_value());
    EXPECT_FALSE(env_int("HAM_AURORA_TEST_MISSING").has_value());
}

TEST_F(EnvTest, StringRoundTrip) {
    SetEnv("HAM_AURORA_TEST_STR", "hello");
    EXPECT_EQ(env_string("HAM_AURORA_TEST_STR").value(), "hello");
}

TEST_F(EnvTest, IntParse) {
    SetEnv("HAM_AURORA_TEST_INT", "12345");
    EXPECT_EQ(env_int("HAM_AURORA_TEST_INT").value(), 12345);
}

TEST_F(EnvTest, IntHexParse) {
    SetEnv("HAM_AURORA_TEST_HEX", "0x10");
    EXPECT_EQ(env_int("HAM_AURORA_TEST_HEX").value(), 16);
}

TEST_F(EnvTest, IntGarbageIsNullopt) {
    SetEnv("HAM_AURORA_TEST_BAD", "12abc");
    EXPECT_FALSE(env_int("HAM_AURORA_TEST_BAD").has_value());
}

TEST_F(EnvTest, IntOrFallback) {
    unsetenv("HAM_AURORA_TEST_FB");
    EXPECT_EQ(env_int_or("HAM_AURORA_TEST_FB", 42), 42);
    SetEnv("HAM_AURORA_TEST_FB", "7");
    EXPECT_EQ(env_int_or("HAM_AURORA_TEST_FB", 42), 7);
}

TEST_F(EnvTest, FlagVariants) {
    SetEnv("HAM_AURORA_TEST_FLAG", "TRUE");
    EXPECT_TRUE(env_flag("HAM_AURORA_TEST_FLAG"));
    SetEnv("HAM_AURORA_TEST_FLAG", "on");
    EXPECT_TRUE(env_flag("HAM_AURORA_TEST_FLAG"));
    SetEnv("HAM_AURORA_TEST_FLAG", "0");
    EXPECT_FALSE(env_flag("HAM_AURORA_TEST_FLAG"));
    SetEnv("HAM_AURORA_TEST_FLAG", "nonsense");
    EXPECT_FALSE(env_flag("HAM_AURORA_TEST_FLAG"));
}

TEST_F(EnvTest, FlagFallback) {
    unsetenv("HAM_AURORA_TEST_FLAG2");
    EXPECT_TRUE(env_flag("HAM_AURORA_TEST_FLAG2", true));
    EXPECT_FALSE(env_flag("HAM_AURORA_TEST_FLAG2", false));
}

} // namespace
} // namespace aurora
