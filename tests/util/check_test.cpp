#include "util/check.hpp"

#include <gtest/gtest.h>

namespace aurora {
namespace {

TEST(Check, PassingCheckDoesNothing) {
    EXPECT_NO_THROW(AURORA_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrows) {
    EXPECT_THROW(AURORA_CHECK(false), check_error);
}

TEST(Check, MessageIncludesExpressionAndContext) {
    try {
        AURORA_CHECK_MSG(2 > 3, "math is broken: " << 42);
        FAIL() << "should have thrown";
    } catch (const check_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 > 3"), std::string::npos);
        EXPECT_NE(what.find("math is broken: 42"), std::string::npos);
        EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    }
}

TEST(Check, UnreachableThrows) {
    EXPECT_THROW(unreachable(), check_error);
    EXPECT_THROW(unreachable("custom"), check_error);
}

} // namespace
} // namespace aurora
