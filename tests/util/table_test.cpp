#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace aurora {
namespace {

TEST(TextTable, HeaderOnly) {
    text_table t({"a", "b"});
    const std::string s = t.str();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("b"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RowCellCountMismatchThrows) {
    text_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), check_error);
}

TEST(TextTable, EmptyHeaderThrows) {
    EXPECT_THROW(text_table(std::vector<std::string>{}), check_error);
}

TEST(TextTable, RendersRows) {
    text_table t({"method", "time"});
    t.add_row({"VEO", "80 us"});
    t.add_row({"HAM-Offload (DMA)", "6.10 us"});
    const std::string s = t.str();
    EXPECT_NE(s.find("HAM-Offload (DMA)"), std::string::npos);
    EXPECT_NE(s.find("6.10 us"), std::string::npos);
}

TEST(TextTable, CsvFormat) {
    text_table t({"size", "bw"});
    t.add_row({"8", "0.01"});
    t.add_row({"16", "0.02"});
    EXPECT_EQ(t.csv(), "size,bw\n8,0.01\n16,0.02\n");
}

TEST(TextTable, ColumnsAligned) {
    text_table t({"x", "y"});
    t.add_row({"long-name-here", "1"});
    t.add_row({"s", "2"});
    const std::string s = t.str();
    // Every line has the same length when padded.
    std::size_t first_len = s.find('\n');
    ASSERT_NE(first_len, std::string::npos);
    // Just sanity-check rendering does not throw and contains both rows.
    EXPECT_NE(s.find("long-name-here"), std::string::npos);
    EXPECT_NE(s.find("s"), std::string::npos);
}

} // namespace
} // namespace aurora
