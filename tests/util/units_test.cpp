#include "util/units.hpp"

#include <gtest/gtest.h>

namespace aurora {
namespace {

TEST(Units, BinaryConstants) {
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

TEST(Units, DecimalConstants) {
    EXPECT_EQ(KB, 1000u);
    EXPECT_EQ(GB, 1000u * 1000u * 1000u);
}

TEST(Units, FormatBytesExact) {
    EXPECT_EQ(format_bytes(0), "0 B");
    EXPECT_EQ(format_bytes(8), "8 B");
    EXPECT_EQ(format_bytes(1024), "1 KiB");
    EXPECT_EQ(format_bytes(4 * KiB), "4 KiB");
    EXPECT_EQ(format_bytes(2 * MiB), "2 MiB");
    EXPECT_EQ(format_bytes(256 * MiB), "256 MiB");
    EXPECT_EQ(format_bytes(48 * GiB), "48 GiB");
}

TEST(Units, FormatBytesFractional) {
    EXPECT_EQ(format_bytes(1536), "1.50 KiB");
    EXPECT_EQ(format_bytes(KiB + 1), "1.00 KiB");
}

TEST(Units, FormatNs) {
    EXPECT_EQ(format_ns(0), "0 ns");
    EXPECT_EQ(format_ns(999), "999 ns");
    EXPECT_EQ(format_ns(6100), "6.10 us");
    EXPECT_EQ(format_ns(80000), "80 us");
    EXPECT_EQ(format_ns(432000), "432 us");
    EXPECT_EQ(format_ns(1500000), "1.50 ms");
    EXPECT_EQ(format_ns(2000000000), "2 s");
}

TEST(Units, FormatNsNegative) {
    EXPECT_EQ(format_ns(-6100), "-6.10 us");
}

TEST(Units, BandwidthMath) {
    // 1 GiB in 1 s is exactly 1 GiB/s.
    EXPECT_DOUBLE_EQ(bandwidth_gib_s(GiB, 1'000'000'000), 1.0);
    // 8 B in 600 ns ~= 0.0124 GiB/s (the LHM sustained rate).
    EXPECT_NEAR(bandwidth_gib_s(8, 600), 0.0124, 0.0005);
}

TEST(Units, BandwidthZeroTime) {
    EXPECT_DOUBLE_EQ(bandwidth_gib_s(123, 0), 0.0);
    EXPECT_DOUBLE_EQ(bandwidth_gib_s(123, -5), 0.0);
}

TEST(Units, FormatBandwidth) {
    EXPECT_EQ(format_bandwidth(GiB, 1'000'000'000), "1.00 GiB/s");
}

} // namespace
} // namespace aurora
