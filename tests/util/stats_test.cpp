#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace aurora {
namespace {

TEST(SampleStats, EmptyByDefault) {
    sample_stats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
}

TEST(SampleStats, MeanOfConstant) {
    sample_stats s;
    for (int i = 0; i < 10; ++i) s.add(6.1);
    EXPECT_DOUBLE_EQ(s.mean(), 6.1);
    EXPECT_DOUBLE_EQ(s.min(), 6.1);
    EXPECT_DOUBLE_EQ(s.max(), 6.1);
}

TEST(SampleStats, MeanMinMax) {
    sample_stats s;
    s.add(1.0);
    s.add(2.0);
    s.add(6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(SampleStats, MedianOddCount) {
    sample_stats s;
    s.add(5.0);
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStats, PercentileBounds) {
    sample_stats s;
    for (int i = 1; i <= 100; ++i) s.add(double(i));
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
    EXPECT_NEAR(s.percentile(50.0), 50.0, 1.0);
}

TEST(SampleStats, PercentileAfterMoreSamples) {
    sample_stats s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 10.0);
    s.add(20.0); // invalidates the cached sort
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 20.0);
}

TEST(SampleStats, ClearResets) {
    sample_stats s;
    s.add(1.0);
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(SampleStats, ThrowsOnEmptyMean) {
    sample_stats s;
    EXPECT_THROW((void)s.mean(), check_error);
    EXPECT_THROW((void)s.min(), check_error);
    EXPECT_THROW((void)s.percentile(50.0), check_error);
}

TEST(SampleStats, ThrowsOnBadPercentile) {
    sample_stats s;
    s.add(1.0);
    EXPECT_THROW((void)s.percentile(-1.0), check_error);
    EXPECT_THROW((void)s.percentile(101.0), check_error);
}

} // namespace
} // namespace aurora
