// Calibration gate: the simulated platform must reproduce the paper's
// headline measurements end-to-end. If one of these fails after a cost-model
// change, the benches no longer reproduce the paper — fix the model, not the
// test.
//
// Paper targets (Noack/Focht/Steinke 2019):
//   Fig. 9   : native VEO ~80 us; HAM/VEO ~432 us; HAM/VE-DMA 6.1 us
//              ratios: 5.4x, 13.1x, 70.8x
//   Table IV : VEO 9.9/10.4, user DMA 10.6/11.1, LHM/SHM 0.01/0.06 GiB/s
//   Sec. V-A : PCIe RTT 1.2 us; second socket adds <= 1 us
#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "sim/vh_memory.hpp"
#include "vedma/dmaatb.hpp"
#include "vedma/lhm_shm.hpp"
#include "vedma/userdma.hpp"
#include "veo/veo_api.hpp"
#include "veos/native.hpp"

namespace ham::offload {
namespace {

void empty_kernel() {}

double offload_cost(backend_kind kind, int socket = 0) {
    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    runtime_options opt;
    opt.backend = kind;
    opt.vh_socket = socket;
    double per_call = 0.0;
    run(plat, opt, [&] {
        for (int i = 0; i < 10; ++i) sync(1, ham::f2f<&empty_kernel>());
        const sim::time_ns t0 = sim::now();
        constexpr int reps = 50;
        for (int i = 0; i < reps; ++i) sync(1, ham::f2f<&empty_kernel>());
        per_call = double(sim::now() - t0) / reps;
    });
    return per_call;
}

double native_veo_cost() {
    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    aurora::veos::veos_system sys(plat);
    aurora::veos::program_image img("libcal.so");
    img.add_symbol("empty",
                   [](aurora::veos::ve_call_context&) -> std::uint64_t { return 0; });
    sys.install_image(img);
    double per_call = 0.0;
    plat.sim().spawn("VH.cal", [&] {
        aurora::veo::proc_guard h(sys, 0);
        const auto lib = aurora::veo::veo_load_library(h.get(), "libcal.so");
        const auto sym = aurora::veo::veo_get_sym(h.get(), lib, "empty");
        auto* ctx = aurora::veo::veo_context_open(h.get());
        auto one = [&] {
            std::uint64_t ret = 0;
            (void)aurora::veo::veo_call_wait_result(
                ctx, aurora::veo::veo_call_async(ctx, sym, nullptr), &ret);
        };
        for (int i = 0; i < 10; ++i) one();
        const sim::time_ns t0 = sim::now();
        for (int i = 0; i < 50; ++i) one();
        per_call = double(sim::now() - t0) / 50;
    });
    plat.sim().run();
    return per_call;
}

TEST(Calibration, Fig9NativeVeoAround80us) {
    EXPECT_NEAR(native_veo_cost(), 80'000.0, 4'000.0);
}

TEST(Calibration, Fig9HamVeoAround432us) {
    EXPECT_NEAR(offload_cost(backend_kind::veo), 432'000.0, 22'000.0);
}

TEST(Calibration, Fig9HamDmaAround6_1us) {
    EXPECT_NEAR(offload_cost(backend_kind::vedma), 6'100.0, 310.0);
}

TEST(Calibration, Fig9Ratios) {
    const double veo_native = native_veo_cost();
    const double ham_veo = offload_cost(backend_kind::veo);
    const double ham_dma = offload_cost(backend_kind::vedma);
    EXPECT_NEAR(ham_veo / veo_native, 5.4, 0.3);     // paper: 5.4x
    EXPECT_NEAR(veo_native / ham_dma, 13.1, 1.0);    // paper: 13.1x
    EXPECT_NEAR(ham_veo / ham_dma, 70.8, 5.0);       // paper: 70.8x
}

TEST(Calibration, SecondSocketAddsAtMostOneMicrosecond) {
    const double local = offload_cost(backend_kind::vedma, 0);
    const double remote = offload_cost(backend_kind::vedma, 1);
    EXPECT_GT(remote, local);
    EXPECT_LE(remote - local, 1'000.0);
}

TEST(Calibration, PcieRoundTrip1_2us) {
    aurora::sim::pcie_topology topo;
    aurora::sim::cost_model cm;
    EXPECT_EQ(topo.round_trip_latency(cm, 0, 0), 1'200);
}

struct table4 {
    double veo_up, veo_down, dma_up, dma_down, lhm_up, shm_down;
};

table4 measure_table4() {
    table4 r{};
    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    aurora::veos::veos_system sys(plat);
    constexpr std::uint64_t n = 256 * aurora::MiB;
    plat.sim().spawn("VH.cal", [&] {
        aurora::sim::vh_allocation host(plat.vh_pages(), n,
                                        aurora::sim::page_size::huge_2m);
        auto& proc = sys.daemon(0).create_process();
        const std::uint64_t ve_buf =
            proc.ve_alloc(n, aurora::sim::page_size::huge_64m);
        auto& pdma = sys.daemon(0).dma();

        auto bw = [&](std::uint64_t len, auto&& fn) {
            const sim::time_ns t0 = sim::now();
            fn();
            return aurora::bandwidth_gib_s(len, sim::now() - t0);
        };
        r.veo_up = bw(n, [&] { pdma.write_to_ve(proc, ve_buf, host.data(), n, 0); });
        r.veo_down =
            bw(n, [&] { pdma.read_from_ve(proc, ve_buf, host.data(), n, 0); });

        aurora::veos::run_native(proc, [&] {
            aurora::vedma::dmaatb atb(proc);
            aurora::vedma::user_dma_engine dma(atb);
            const auto hh = atb.register_vh(host.data(), n, 0);
            const auto vv = atb.register_ve(ve_buf, n);
            r.dma_up = bw(n, [&] { dma.dma_sync(vv, hh, n); });
            r.dma_down = bw(n, [&] { dma.dma_sync(hh, vv, n); });
            std::vector<std::byte> scratch(4 * aurora::MiB);
            r.lhm_up = bw(4 * aurora::MiB, [&] {
                aurora::vedma::lhm_load(atb, hh, scratch.data(), 4 * aurora::MiB);
            });
            r.shm_down = bw(4 * aurora::MiB, [&] {
                aurora::vedma::shm_store(atb, hh, scratch.data(), 4 * aurora::MiB);
            });
        });
        sys.daemon(0).destroy_process(proc);
    });
    plat.sim().run();
    return r;
}

TEST(Calibration, Table4PeakBandwidths) {
    const table4 r = measure_table4();
    EXPECT_NEAR(r.veo_up, 9.9, 0.15);
    EXPECT_NEAR(r.veo_down, 10.4, 0.15);
    EXPECT_NEAR(r.dma_up, 10.6, 0.15);
    EXPECT_NEAR(r.dma_down, 11.1, 0.15);
    EXPECT_NEAR(r.lhm_up, 0.01, 0.003);
    EXPECT_NEAR(r.shm_down, 0.06, 0.005);
}

TEST(Calibration, OrderingInvariants) {
    // Qualitative orderings that must hold whatever the exact constants are.
    const table4 r = measure_table4();
    EXPECT_GT(r.dma_up, r.veo_up);     // "VE user DMA is always faster than VEO"
    EXPECT_GT(r.dma_down, r.veo_down);
    EXPECT_GT(r.veo_down, r.veo_up);   // VE=>VH is the faster direction
    EXPECT_GT(r.dma_down, r.dma_up);
    EXPECT_GT(r.shm_down, r.lhm_up);   // SHM stores beat LHM loads
    aurora::sim::cost_model cm;
    EXPECT_LT(r.dma_down, cm.pcie_effective_peak_gib); // below the PCIe ceiling
}

} // namespace
} // namespace ham::offload
