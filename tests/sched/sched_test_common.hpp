// Common harness for the scheduler tests: run a body inside offload::run()
// with `n` loopback targets on the small test machine.
#pragma once

#include <functional>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "sched/sched.hpp"
#include "tests/sched/sched_test_kernels.hpp"

namespace aurora::sched {

inline ham::offload::runtime_options loopback_targets(std::size_t n) {
    ham::offload::runtime_options opt;
    opt.backend = ham::offload::backend_kind::loopback;
    opt.targets.assign(n, 0);
    return opt;
}

inline void run_sched(std::size_t num_targets,
                      const std::function<void()>& body) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(ham::offload::run(plat, loopback_targets(num_targets), body), 0);
}

} // namespace aurora::sched
