// task_graph construction and dependency-driven execution.
#include <numeric>

#include <gtest/gtest.h>

#include "tests/sched/sched_test_common.hpp"
#include "util/check.hpp"

namespace aurora::sched {
namespace {

namespace sk = testkernels;

TEST(SchedGraph, DependenciesMustBeEarlierTasks) {
    run_sched(1, [] {
        task_graph g;
        const task_id a = g.add(ham::f2f<&sk::boom>());
        EXPECT_EQ(a, 0u);
        EXPECT_THROW((void)g.add(ham::f2f<&sk::boom>(), {task_id{5}}),
                     aurora::check_error);
        // Self-dependency is equally illegal (the next id is 1).
        EXPECT_THROW((void)g.add(ham::f2f<&sk::boom>(), {task_id{1}}),
                     aurora::check_error);
    });
}

TEST(SchedGraph, BuildingOutsideRunThrows) {
    task_graph g;
    EXPECT_THROW((void)g.add(ham::f2f<&sk::boom>()), aurora::check_error);
}

TEST(SchedGraph, LinearChainRunsInOrder) {
    run_sched(1, [] {
        std::vector<int> log;
        task_graph g;
        task_id prev = invalid_task;
        for (int i = 0; i < 6; ++i) {
            const auto dep_count = std::size_t(prev == invalid_task ? 0 : 1);
            prev = g.add_serialized(
                detail::serialize_task(ham::f2f<&sk::record>(&log, i)),
                task_options{}, &prev, dep_count);
        }
        executor ex;
        ex.run(g);
        const std::vector<int> expected{0, 1, 2, 3, 4, 5};
        EXPECT_EQ(log, expected);
    });
}

TEST(SchedGraph, DiamondWithHostScatterAndReduce) {
    // scatter (host) -> 4 adders (VEs) -> reduce (host): the satellite
    // example's shape, condensed. Results flow through plain host memory.
    run_sched(2, [] {
        std::vector<std::uint64_t> parts(4, 0);
        std::vector<int> log;
        task_graph g;
        const task_id scatter =
            g.add(ham::f2f<&sk::record>(&log, 100), {.affinity = 0});
        std::vector<task_id> mids;
        for (std::size_t i = 0; i < parts.size(); ++i) {
            mids.push_back(g.add(ham::f2f<&sk::bump>(&parts[i]),
                                 {.affinity = node_t(1 + i % 2)}, {scatter}));
        }
        const task_id reduce = g.add_serialized(
            detail::serialize_task(ham::f2f<&sk::record>(&log, 200)),
            task_options{.affinity = 0}, mids.data(), mids.size());

        executor ex;
        ex.run(g);

        EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), 0ull), 4u);
        const std::vector<int> expected{100, 200};
        EXPECT_EQ(log, expected); // scatter strictly before reduce
        EXPECT_EQ(ex.state_of(scatter), task_state::done);
        EXPECT_EQ(ex.state_of(reduce), task_state::done);
        EXPECT_EQ(ex.stats().host_tasks, 2u);
    });
}

TEST(SchedGraph, TraceCertifiesTopologicalOrder) {
    run_sched(2, [] {
        std::vector<std::uint64_t> counters(10, 0);
        task_graph g;
        std::vector<task_id> ids;
        for (std::size_t i = 0; i < counters.size(); ++i) {
            std::vector<task_id> deps;
            if (i >= 2) {
                deps = {ids[i - 1], ids[i - 2]};
            }
            ids.push_back(g.add_serialized(
                detail::serialize_task(ham::f2f<&sk::bump>(&counters[i])),
                task_options{}, deps.data(), deps.size()));
        }
        executor ex;
        ex.run(g);

        ASSERT_EQ(ex.trace().size(), counters.size());
        std::vector<completion_record> by_id(counters.size());
        for (const completion_record& r : ex.trace()) {
            by_id[r.id] = r;
        }
        for (std::size_t i = 2; i < counters.size(); ++i) {
            EXPECT_LT(by_id[i - 1].done_seq, by_id[i].start_seq);
            EXPECT_LT(by_id[i - 2].done_seq, by_id[i].start_seq);
        }
        for (const std::uint64_t c : counters) {
            EXPECT_EQ(c, 1u); // exactly once
        }
    });
}

TEST(SchedGraph, ManyIndependentTasksRunExactlyOnce) {
    run_sched(4, [] {
        std::vector<std::uint64_t> counters(100, 0);
        task_graph g;
        for (auto& c : counters) {
            (void)g.add(ham::f2f<&sk::bump>(&c));
        }
        executor ex;
        ex.run(g);
        for (const std::uint64_t c : counters) {
            EXPECT_EQ(c, 1u);
        }
        EXPECT_EQ(ex.trace().size(), counters.size());
    });
}

} // namespace
} // namespace aurora::sched
