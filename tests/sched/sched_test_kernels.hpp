// Shared offloadable kernels for the scheduler tests.
//
// All tests use the compile-time f2f<&fn>() form, so no registration is
// needed. Kernels take raw host pointers: every simulated backend shares the
// test process's address space, which lets tests observe execution (counters,
// orderings) without a put/get round trip per task.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace aurora::sched::testkernels {

/// Exactly-once probe: each task bumps its own counter slot.
inline void bump(std::uint64_t* counter) {
    ++*counter;
}

/// Ordering probe: append a marker to a shared log.
inline void record(std::vector<int>* log, int marker) {
    log->push_back(marker);
}

/// Synthetic kernel costing `ns` virtual nanoseconds, then bumping a counter.
inline void cost_kernel(std::int64_t ns, std::uint64_t* counter) {
    aurora::sim::advance(ns);
    ++*counter;
}

inline void boom() {
    throw std::runtime_error("task exploded");
}

} // namespace aurora::sched::testkernels
