// Randomized property tests: exactly-once execution, topological safety and
// run-to-run determinism over generated DAGs (seeded LCG, fully repeatable).
#include <gtest/gtest.h>

#include "tests/sched/sched_test_common.hpp"

namespace aurora::sched {
namespace {

namespace sk = testkernels;

class lcg {
public:
    explicit lcg(std::uint64_t seed) : x_(seed * 2654435761u + 1) {}
    /// Uniform in [0, n).
    std::uint64_t next(std::uint64_t n) {
        x_ = x_ * 6364136223846793005ULL + 1442695040888963407ULL;
        return (x_ >> 33) % n;
    }

private:
    std::uint64_t x_;
};

constexpr std::size_t num_tasks = 60;
constexpr std::size_t num_targets = 4;

/// Build and execute one random DAG; returns the completion trace.
std::vector<completion_record> run_random_dag(std::uint64_t seed,
                                              std::vector<std::vector<task_id>>* deps_out) {
    std::vector<completion_record> trace;
    run_sched(num_targets, [&] {
        lcg rng(seed);
        std::vector<std::uint64_t> counters(num_tasks, 0);
        task_graph g;
        std::vector<std::vector<task_id>> deps(num_tasks);
        for (std::size_t i = 0; i < num_tasks; ++i) {
            // Up to three distinct edges into the recent past.
            for (std::uint64_t e = rng.next(4); e > 0 && i > 0; --e) {
                const auto d = task_id(i - 1 - rng.next(std::min<std::size_t>(i, 8)));
                if (std::find(deps[i].begin(), deps[i].end(), d) == deps[i].end()) {
                    deps[i].push_back(d);
                }
            }
            task_options opts;
            if (rng.next(3) != 0) {
                opts.affinity = node_t(1 + rng.next(num_targets));
                opts.pinned = rng.next(5) == 0;
            }
            opts.cost_ns = 200 * rng.next(10);
            (void)g.add_serialized(
                detail::serialize_task(ham::f2f<&sk::cost_kernel>(
                    std::int64_t(opts.cost_ns), &counters[i])),
                opts, deps[i].data(), deps[i].size());
        }

        executor ex{{.policy = placement_policy::work_stealing,
                     .window = 2,
                     .batching = true,
                     .max_batch = 4}};
        ex.run(g);

        for (const std::uint64_t c : counters) {
            ASSERT_EQ(c, 1u) << "task executed " << c << " times (seed "
                             << seed << ")";
        }
        trace = ex.trace();
        if (deps_out != nullptr) {
            *deps_out = deps;
        }
    });
    return trace;
}

TEST(SchedProperty, RandomDagsRunExactlyOnceInTopologicalOrder) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        std::vector<std::vector<task_id>> deps;
        const std::vector<completion_record> trace = run_random_dag(seed, &deps);
        ASSERT_EQ(trace.size(), num_tasks);

        std::vector<completion_record> by_id(num_tasks);
        for (const completion_record& r : trace) {
            by_id[r.id] = r;
        }
        for (std::size_t i = 0; i < num_tasks; ++i) {
            for (const task_id d : deps[i]) {
                EXPECT_LT(by_id[d].done_seq, by_id[i].start_seq)
                    << "edge " << d << " -> " << i << " violated (seed "
                    << seed << ")";
            }
        }
    }
}

TEST(SchedProperty, RepeatedRunsAreBitIdentical) {
    for (std::uint64_t seed = 11; seed <= 13; ++seed) {
        const std::vector<completion_record> a = run_random_dag(seed, nullptr);
        const std::vector<completion_record> b = run_random_dag(seed, nullptr);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, b[i].id);
            EXPECT_EQ(a[i].executed_on, b[i].executed_on);
            EXPECT_EQ(a[i].start_seq, b[i].start_seq);
            EXPECT_EQ(a[i].done_seq, b[i].done_seq);
            EXPECT_EQ(a[i].done_time_ns, b[i].done_time_ns)
                << "virtual timestamps diverged at trace[" << i << "] (seed "
                << seed << ")";
        }
    }
}

} // namespace
} // namespace aurora::sched
