// Executor mechanics: backpressure, batching, failure propagation.
#include <gtest/gtest.h>

#include "tests/sched/sched_test_common.hpp"
#include "util/check.hpp"

namespace aurora::sched {
namespace {

namespace sk = testkernels;

TEST(SchedExecutor, BackpressureBlocksInsteadOfFailing) {
    run_sched(1, [] {
        std::vector<std::uint64_t> counters(32, 0);
        executor ex{{.window = 2, .max_queued = 4}};
        const auto before = aurora::sim::now();
        for (auto& c : counters) {
            (void)ex.submit(ham::f2f<&sk::cost_kernel>(std::int64_t{500}, &c));
        }
        // The backlog bound forces submit() to drain completions: virtual
        // time advanced while blocking, nothing threw, nothing was dropped.
        EXPECT_GT(ex.stats().backpressure_stalls, 0u);
        EXPECT_GT(aurora::sim::now(), before);
        ex.wait_all();
        for (const std::uint64_t c : counters) {
            EXPECT_EQ(c, 1u);
        }
    });
}

TEST(SchedExecutor, BackpressureBoundHoldsDuringSubmission) {
    run_sched(1, [] {
        std::vector<std::uint64_t> counters(20, 0);
        executor ex{{.window = 1, .max_queued = 3}};
        std::size_t submitted = 0;
        for (auto& c : counters) {
            (void)ex.submit(ham::f2f<&sk::bump>(&c));
            ++submitted;
            std::size_t unfinished = 0;
            for (task_id id = 0; id < submitted; ++id) {
                unfinished += ex.finished(id) ? 0u : 1u;
            }
            EXPECT_LE(unfinished, 3u);
        }
        ex.wait_all();
    });
}

TEST(SchedExecutor, BatchingCoalescesReadyTasks) {
    run_sched(1, [] {
        std::vector<std::uint64_t> counters(16, 0);
        task_graph g;
        for (auto& c : counters) {
            (void)g.add(ham::f2f<&sk::bump>(&c));
        }
        executor ex{{.window = 1, .batching = true, .max_batch = 8}};
        ex.run(g);
        // All 16 are ready at the first dispatch; a window of one drains
        // them as two full batches of max_batch.
        const executor::target_load& t0 = ex.stats().per_target.at(0);
        EXPECT_EQ(t0.messages_sent, 2u);
        EXPECT_EQ(t0.batches_sent, 2u);
        EXPECT_EQ(ex.stats().batched_tasks, 16u);
        EXPECT_EQ(t0.tasks_executed, 16u);
        for (const std::uint64_t c : counters) {
            EXPECT_EQ(c, 1u);
        }
    });
}

TEST(SchedExecutor, BatchingDisabledSendsIndividually) {
    run_sched(1, [] {
        std::vector<std::uint64_t> counters(16, 0);
        task_graph g;
        for (auto& c : counters) {
            (void)g.add(ham::f2f<&sk::bump>(&c));
        }
        executor ex{{.window = 2, .batching = false}};
        ex.run(g);
        const executor::target_load& t0 = ex.stats().per_target.at(0);
        EXPECT_EQ(t0.messages_sent, 16u);
        EXPECT_EQ(t0.batches_sent, 0u);
        EXPECT_EQ(ex.stats().batched_tasks, 0u);
    });
}

TEST(SchedExecutor, BatchesNeverExceedSlotCapacity) {
    // Oversized max_batch on minimum-size slots: the slot payload, not the
    // configuration, caps the batch. Messages must still arrive exactly once.
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ham::offload::runtime_options opt = loopback_targets(1);
    opt.msg_size = 256;
    ASSERT_EQ(ham::offload::run(plat, opt, [] {
        std::vector<std::uint64_t> counters(64, 0);
        task_graph g;
        for (auto& c : counters) {
            (void)g.add(ham::f2f<&sk::bump>(&c));
        }
        executor ex{{.window = 1, .batching = true, .max_batch = 1000}};
        ex.run(g);
        const executor::target_load& t0 = ex.stats().per_target.at(0);
        EXPECT_GT(t0.messages_sent, 1u); // could not fit 64 tasks in one slot
        for (const std::uint64_t c : counters) {
            EXPECT_EQ(c, 1u);
        }
    }), 0);
}

TEST(SchedExecutor, TargetFailurePropagatesAndSkipsSuccessors) {
    run_sched(1, [] {
        std::uint64_t done = 0;
        executor ex{{.batching = false}};
        const task_id ok = ex.submit(ham::f2f<&sk::bump>(&done));
        const task_id bad = ex.submit(ham::f2f<&sk::boom>());
        const task_id succ = ex.submit(ham::f2f<&sk::bump>(&done), {bad});
        EXPECT_THROW(ex.wait_all(), ham::offload::offload_error);
        EXPECT_EQ(ex.state_of(ok), task_state::done);
        EXPECT_EQ(ex.state_of(bad), task_state::failed);
        EXPECT_EQ(ex.state_of(succ), task_state::failed);
        EXPECT_EQ(done, 1u); // the successor never ran
    });
}

TEST(SchedExecutor, HostTaskFailurePropagates) {
    run_sched(1, [] {
        executor ex;
        (void)ex.submit(ham::f2f<&sk::boom>(), {.affinity = 0});
        EXPECT_THROW(ex.wait_all(), ham::offload::offload_error);
    });
}

TEST(SchedExecutor, SubmitAgainstFinishedDependencies) {
    run_sched(1, [] {
        std::uint64_t a = 0, b = 0;
        executor ex;
        const task_id first = ex.submit(ham::f2f<&sk::bump>(&a));
        ex.wait_all();
        EXPECT_EQ(a, 1u);
        // `first` is settled; a dependency on it must not block anything.
        (void)ex.submit(ham::f2f<&sk::bump>(&b), {first});
        ex.wait_all();
        EXPECT_EQ(b, 1u);
    });
}

TEST(SchedExecutor, SubmitAgainstExpiredDependencyDoesNotWedge) {
    run_sched(1, [] {
        std::uint64_t ran = 0;
        executor ex;
        aurora::sim::advance(1'000);
        // Dead on arrival: the deadline already passed at submit.
        const task_id doa = ex.submit(ham::f2f<&sk::bump>(&ran),
                                      {.deadline_ns = 1});
        EXPECT_EQ(ex.state_of(doa), task_state::expired);
        // Linking against the already-settled expired dep must propagate the
        // outcome (cascade-expire), not leave the successor blocked forever.
        const task_id succ = ex.submit(ham::f2f<&sk::bump>(&ran), {doa});
        ex.wait_all(); // regression: used to crash "executor stalled"
        EXPECT_EQ(ex.state_of(succ), task_state::expired);
        EXPECT_EQ(ran, 0u);
    });
}

TEST(SchedExecutor, SubmitAfterDependencyFailedCascadesInServingMode) {
    run_sched(1, [] {
        std::uint64_t ran = 0;
        executor ex{{.fail_fast = false}};
        const task_id bad = ex.submit(ham::f2f<&sk::boom>());
        ex.wait_all(); // serving mode: the failure settles, no rethrow
        ASSERT_EQ(ex.state_of(bad), task_state::failed);
        // Cascade semantics must not depend on submission order: a successor
        // linked after the dep failed fails too, exactly as one linked before.
        const task_id succ = ex.submit(ham::f2f<&sk::bump>(&ran), {bad});
        ex.wait_all();
        EXPECT_EQ(ex.state_of(succ), task_state::failed);
        EXPECT_EQ(ran, 0u);
        // The per-task root cause survives the cascade.
        EXPECT_NE(ex.error_of(bad).find("task exploded"), std::string::npos);
        EXPECT_NE(ex.error_of(succ).find("task exploded"), std::string::npos);
    });
}

TEST(SchedExecutor, WindowClampedToMessageSlots) {
    run_sched(1, [] {
        std::vector<std::uint64_t> counters(40, 0);
        executor ex{{.window = 1000, .batching = false}};
        for (auto& c : counters) {
            (void)ex.submit(ham::f2f<&sk::bump>(&c));
        }
        ex.wait_all();
        for (const std::uint64_t c : counters) {
            EXPECT_EQ(c, 1u);
        }
    });
}

TEST(SchedExecutor, RuntimeStatsObservableMidFlight) {
    // The offload-layer introspection hook the executor builds on.
    run_sched(1, [] {
        ham::offload::runtime& rt = *ham::offload::runtime::current();
        const auto idle = rt.runtime_stats(1);
        EXPECT_EQ(idle.slots_total, rt.options().msg_slots);
        EXPECT_EQ(idle.in_flight, 0u);
        EXPECT_EQ(rt.slots_available(1), rt.options().msg_slots);

        std::uint64_t dummy = 0;
        auto f = ham::offload::async(1, ham::f2f<&sk::bump>(&dummy));
        auto g = ham::offload::async(1, ham::f2f<&sk::bump>(&dummy));
        EXPECT_GE(rt.runtime_stats(1).in_flight, 1u);
        EXPECT_LT(rt.slots_available(1), rt.options().msg_slots);
        f.get();
        g.get();
        EXPECT_EQ(rt.runtime_stats(1).in_flight, 0u);
        EXPECT_GE(rt.runtime_stats(1).completed, 2u);
        EXPECT_EQ(dummy, 2u);
    });
}

} // namespace
} // namespace aurora::sched
