// Placement policies: round robin, locality, work stealing, pinning.
#include <map>

#include <gtest/gtest.h>

#include "tests/sched/sched_test_common.hpp"

namespace aurora::sched {
namespace {

namespace sk = testkernels;

std::map<node_t, std::size_t> tasks_per_node(const executor& ex) {
    std::map<node_t, std::size_t> n;
    for (const completion_record& r : ex.trace()) {
        ++n[r.executed_on];
    }
    return n;
}

TEST(SchedPolicy, RoundRobinDealsEvenlyAndIgnoresAffinity) {
    run_sched(4, [] {
        std::vector<std::uint64_t> counters(16, 0);
        task_graph g;
        for (auto& c : counters) {
            // Everyone asks for node 2; round robin does not care.
            (void)g.add(ham::f2f<&sk::bump>(&c), {.affinity = 2});
        }
        executor ex{{.policy = placement_policy::round_robin,
                     .batching = false}};
        ex.run(g);
        const auto per_node = tasks_per_node(ex);
        ASSERT_EQ(per_node.size(), 4u);
        for (node_t n = 1; n <= 4; ++n) {
            EXPECT_EQ(per_node.at(n), 4u) << "node " << n;
        }
    });
}

TEST(SchedPolicy, LocalityHonorsAffinity) {
    run_sched(4, [] {
        std::vector<std::uint64_t> counters(16, 0);
        task_graph g;
        std::vector<node_t> want;
        for (std::size_t i = 0; i < counters.size(); ++i) {
            const auto node = node_t(1 + i % 4);
            want.push_back(node);
            (void)g.add(ham::f2f<&sk::bump>(&counters[i]), {.affinity = node});
        }
        executor ex{{.policy = placement_policy::locality}};
        ex.run(g);
        for (const completion_record& r : ex.trace()) {
            EXPECT_EQ(r.executed_on, want.at(r.id)) << "task " << r.id;
        }
        EXPECT_EQ(ex.stats().steals, 0u);
    });
}

TEST(SchedPolicy, LocalityFallsBackToRoundRobinWithoutAffinity) {
    run_sched(4, [] {
        std::vector<std::uint64_t> counters(8, 0);
        task_graph g;
        for (auto& c : counters) {
            (void)g.add(ham::f2f<&sk::bump>(&c)); // any_node
        }
        executor ex{{.policy = placement_policy::locality, .batching = false}};
        ex.run(g);
        const auto per_node = tasks_per_node(ex);
        ASSERT_EQ(per_node.size(), 4u); // all four nodes saw work
    });
}

TEST(SchedPolicy, WorkStealingRebalancesSkewedLoad) {
    run_sched(2, [] {
        std::vector<std::uint64_t> counters(24, 0);
        task_graph g;
        for (auto& c : counters) {
            // Everything homed on node 1, nothing pinned: node 2 must steal.
            (void)g.add(ham::f2f<&sk::cost_kernel>(std::int64_t{2000}, &c),
                        {.affinity = 1});
        }
        executor ex{{.policy = placement_policy::work_stealing,
                     .window = 1,
                     .max_batch = 2}};
        ex.run(g);
        EXPECT_GT(ex.stats().steals, 0u);
        const auto per_node = tasks_per_node(ex);
        EXPECT_GT(per_node.count(2) ? per_node.at(2) : 0u, 0u);
        EXPECT_GT(ex.stats().per_target.at(1).tasks_stolen_in, 0u);
        for (const std::uint64_t c : counters) {
            EXPECT_EQ(c, 1u); // stolen, not duplicated
        }
    });
}

TEST(SchedPolicy, PinnedTasksNeverMigrate) {
    run_sched(2, [] {
        std::vector<std::uint64_t> counters(24, 0);
        task_graph g;
        for (auto& c : counters) {
            (void)g.add(ham::f2f<&sk::cost_kernel>(std::int64_t{2000}, &c),
                        {.affinity = 1, .pinned = true});
        }
        executor ex{{.policy = placement_policy::work_stealing, .window = 1}};
        ex.run(g);
        EXPECT_EQ(ex.stats().steals, 0u);
        for (const completion_record& r : ex.trace()) {
            EXPECT_EQ(r.executed_on, 1);
        }
    });
}

TEST(SchedPolicy, StealingPreservesDependencies) {
    // Chains force repeated ready/steal cycles; order must still hold.
    run_sched(3, [] {
        std::vector<std::uint64_t> counters(30, 0);
        task_graph g;
        std::vector<task_id> ids;
        for (std::size_t i = 0; i < counters.size(); ++i) {
            std::vector<task_id> deps;
            if (i >= 3) {
                deps.push_back(ids[i - 3]); // three interleaved chains
            }
            ids.push_back(g.add_serialized(
                detail::serialize_task(
                    ham::f2f<&sk::cost_kernel>(std::int64_t{500}, &counters[i])),
                task_options{.affinity = 1}, deps.data(), deps.size()));
        }
        executor ex{{.policy = placement_policy::work_stealing, .window = 1}};
        ex.run(g);
        std::vector<completion_record> by_id(counters.size());
        for (const completion_record& r : ex.trace()) {
            by_id[r.id] = r;
        }
        for (std::size_t i = 3; i < counters.size(); ++i) {
            EXPECT_LT(by_id[i - 3].done_seq, by_id[i].start_seq);
        }
    });
}

} // namespace
} // namespace aurora::sched
