// Golden-file test for the Chrome trace-event JSON exporter: a fixed lane
// fixture must serialise byte-for-byte to tests/trace/golden/chrome_trace.json.
// Regenerate after an intentional format change with
//   TRACE_GOLDEN_REGEN=1 ./test_trace --gtest_filter='ChromeExport.*'
#include "trace/chrome_export.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace aurora::trace {
namespace {

std::vector<collector::lane_snapshot> fixture() {
    std::vector<collector::lane_snapshot> lanes(2);
    lanes[0].name = "VH.host";
    lanes[0].tid = 0;
    lanes[0].events = {
        {"offload", "send", 1000, 500, 0, 0, event_type::span},
        {"offload", "sent_bytes", 1500, 0, 64, 0, event_type::counter},
        {"backend", "loopback_result", 2469, 0, 0, 0, event_type::instant},
    };
    lanes[1].name = "VE0.pid1";
    lanes[1].tid = 1;
    lanes[1].events = {
        {"target", "execute", 1200, 333, 0, 0, event_type::span},
        // Exercise the JSON escaper (names are literals in real call sites,
        // but the exporter must stay safe for arbitrary lane names too).
        {"target", "odd\"name\\with\tescapes", 1600, 0, 0, 0,
         event_type::instant},
    };
    lanes[1].dropped = 2;
    return lanes;
}

std::string golden_path() {
    return std::string(TRACE_TEST_GOLDEN_DIR) + "/chrome_trace.json";
}

TEST(ChromeExport, MatchesGoldenFile) {
    const std::string json = chrome_json(fixture());

    if (std::getenv("TRACE_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(golden_path(), std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
        out << json;
        GTEST_SKIP() << "regenerated " << golden_path();
    }

    std::ifstream in(golden_path());
    ASSERT_TRUE(in.good()) << "missing golden file " << golden_path();
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(json, want.str());
}

TEST(ChromeExport, EveryLaneGetsAThreadNameRecord) {
    const std::string json = chrome_json(fixture());
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"VH.host\""), std::string::npos);
    EXPECT_NE(json.find("\"VE0.pid1\""), std::string::npos);
}

TEST(ChromeExport, TimestampsAreMicrosecondsWithNsPrecision) {
    // 2469 ns must appear as 2.469 us, not truncated to 2.
    const std::string json = chrome_json(fixture());
    EXPECT_NE(json.find("\"ts\":2.469"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":0.333"), std::string::npos);
}

TEST(ChromeExport, EmptyLaneListIsValidJson) {
    const std::string json = chrome_json({});
    EXPECT_EQ(json, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n");
}

} // namespace
} // namespace aurora::trace
