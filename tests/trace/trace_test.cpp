// Unit tests for the aurora::trace core: ring-buffer semantics (wrap-around,
// drop accounting), per-thread lane registration under concurrent writers,
// the disabled-mode no-op guarantee, and summary aggregation.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "trace/summary.hpp"

namespace aurora::trace {
namespace {

event span_event(const char* name, std::uint64_t ts, std::uint64_t dur) {
    return {"test", name, ts, dur, 0, 0, event_type::span};
}

TEST(RingBuffer, RetainsEventsInOrderBelowCapacity) {
    ring_buffer rb(8);
    for (std::uint64_t i = 0; i < 5; ++i) {
        rb.push(span_event("e", i, 1));
    }
    EXPECT_EQ(rb.pushed(), 5u);
    EXPECT_EQ(rb.dropped(), 0u);
    const std::vector<event> got = rb.snapshot();
    ASSERT_EQ(got.size(), 5u);
    for (std::uint64_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].ts_ns, i);
    }
}

TEST(RingBuffer, WrapAroundKeepsNewestAndCountsDropped) {
    ring_buffer rb(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        rb.push(span_event("e", i, 1));
    }
    EXPECT_EQ(rb.capacity(), 4u);
    EXPECT_EQ(rb.pushed(), 10u);
    EXPECT_EQ(rb.dropped(), 6u);
    const std::vector<event> got = rb.snapshot();
    ASSERT_EQ(got.size(), 4u);
    // Oldest-first among the retained (newest) events: 6, 7, 8, 9.
    for (std::uint64_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].ts_ns, 6 + i);
    }
}

TEST(RingBuffer, ZeroCapacityIsClampedToOne) {
    ring_buffer rb(0);
    EXPECT_EQ(rb.capacity(), 1u);
    rb.push(span_event("a", 1, 1));
    rb.push(span_event("b", 2, 1));
    const std::vector<event> got = rb.snapshot();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].ts_ns, 2u);
}

TEST(Collector, ConcurrentWritersGetSeparateLanes) {
    set_enabled(true);
    collector::instance().reset();

    constexpr int threads = 8;
    constexpr int per_thread = 1000;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([] {
            for (int i = 0; i < per_thread; ++i) {
                AURORA_TRACE_COUNTER("test", "concurrent", 1);
            }
        });
    }
    for (std::thread& th : pool) {
        th.join();
    }

    const auto lanes = collector::instance().snapshot();
    ASSERT_EQ(lanes.size(), static_cast<std::size_t>(threads));
    std::uint64_t total = 0;
    for (const auto& l : lanes) {
        EXPECT_EQ(l.dropped, 0u);
        EXPECT_EQ(l.events.size(), static_cast<std::size_t>(per_thread));
        total += l.events.size();
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(threads) * per_thread);
    collector::instance().reset();
}

TEST(Collector, ResetInvalidatesCachedLanesTransparently) {
    set_enabled(true);
    collector::instance().reset();
    AURORA_TRACE_INSTANT("test", "before");
    ASSERT_EQ(collector::instance().snapshot().size(), 1u);
    collector::instance().reset();
    // The thread-local lane cache must notice the reset and re-register
    // instead of writing through a dangling pointer.
    AURORA_TRACE_INSTANT("test", "after");
    const auto lanes = collector::instance().snapshot();
    ASSERT_EQ(lanes.size(), 1u);
    ASSERT_EQ(lanes[0].events.size(), 1u);
    EXPECT_STREQ(lanes[0].events[0].name, "after");
    collector::instance().reset();
}

TEST(Disabled, MacrosRecordNothingAndRegisterNoLanes) {
    set_enabled(false);
    collector::instance().reset();
    {
        AURORA_TRACE_SPAN("test", "disabled_span");
        AURORA_TRACE_COUNTER("test", "disabled_counter", 7);
        AURORA_TRACE_INSTANT("test", "disabled_instant");
    }
    count("test", "disabled_direct", 3);
    instant("test", "disabled_direct");
    emit(span_event("disabled_emit", 1, 1));
    EXPECT_TRUE(collector::instance().snapshot().empty());
    set_enabled(true);
    collector::instance().reset();
}

TEST(Scoped, SpanRecordsOnDestruction) {
    set_enabled(true);
    collector::instance().reset();
    {
        AURORA_TRACE_SPAN("test", "scoped");
        EXPECT_TRUE(collector::instance().snapshot().empty() ||
                    collector::instance().snapshot()[0].events.empty());
    }
    const auto lanes = collector::instance().snapshot();
    ASSERT_EQ(lanes.size(), 1u);
    ASSERT_EQ(lanes[0].events.size(), 1u);
    EXPECT_EQ(lanes[0].events[0].type, event_type::span);
    EXPECT_STREQ(lanes[0].events[0].name, "scoped");
    collector::instance().reset();
}

TEST(Summary, AggregatesSpansCountersAndDrops) {
    set_enabled(true);
    collector::instance().reset();
    for (std::uint64_t d : {100u, 200u, 300u, 400u}) {
        emit_span("phase", "send", 10 * d, d);
    }
    count("io", "bytes", 64);
    count("io", "bytes", 36);
    instant("x", "tick");

    const summary s = summarize();
    ASSERT_EQ(s.spans.size(), 1u);
    EXPECT_EQ(s.spans[0].key, "phase/send");
    EXPECT_EQ(s.spans[0].count, 4u);
    EXPECT_DOUBLE_EQ(s.spans[0].mean_ns, 250.0);
    EXPECT_DOUBLE_EQ(s.spans[0].min_ns, 100.0);
    EXPECT_DOUBLE_EQ(s.spans[0].max_ns, 400.0);
    ASSERT_EQ(s.counters.size(), 1u);
    EXPECT_EQ(s.counters[0].key, "io/bytes");
    EXPECT_EQ(s.counters[0].total, 100u);
    EXPECT_EQ(s.counters[0].samples, 2u);
    EXPECT_EQ(s.instants, 1u);
    EXPECT_EQ(s.events, 7u);
    EXPECT_EQ(s.dropped, 0u);

    // Both renderings mention the keys.
    EXPECT_NE(summary_text(s).find("phase/send"), std::string::npos);
    EXPECT_NE(summary_json(s).find("\"io/bytes\""), std::string::npos);
    collector::instance().reset();
}

} // namespace
} // namespace aurora::trace
