// Several HAM-Offload applications sharing one simulated machine.
#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

TEST(MultiApp, TwoAppsOnDifferentVes) {
    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    app_launcher launcher(plat);

    runtime_options a_opt;
    a_opt.backend = backend_kind::vedma;
    a_opt.targets = {0};
    app_handle& a = launcher.launch_void(a_opt, [] {
        for (int i = 0; i < 20; ++i) {
            ASSERT_EQ(sync(1, ham::f2f<&tk::add>(i, 100)), 100 + i);
        }
    }, "VH.appA");

    runtime_options b_opt;
    b_opt.backend = backend_kind::veo;
    b_opt.targets = {5};
    app_handle& b = launcher.launch_void(b_opt, [] {
        for (int i = 0; i < 5; ++i) {
            ASSERT_EQ(sync(1, ham::f2f<&tk::add>(i, 200)), 200 + i);
        }
    }, "VH.appB");

    plat.sim().run();
    EXPECT_TRUE(a.finished());
    EXPECT_TRUE(b.finished());
    EXPECT_EQ(a.exit_code(), 0);
    EXPECT_EQ(b.exit_code(), 0);
}

TEST(MultiApp, TwoAppsShareOneVe) {
    // Two applications, two VE processes, one physical Vector Engine.
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    app_launcher launcher(plat);

    runtime_options opt;
    opt.backend = backend_kind::vedma;
    opt.targets = {0};

    std::int64_t sum_a = 0, sum_b = 0;
    app_handle& a = launcher.launch_void(opt, [&] {
        auto buf = allocate<std::int64_t>(1, 64);
        sync(1, ham::f2f<&tk::fill_buffer>(buf, std::uint64_t{64},
                                           std::int64_t{1}));
        sum_a = sync(1, ham::f2f<&tk::sum_buffer>(buf, std::uint64_t{64}));
        free(buf);
    }, "VH.appA");
    app_handle& b = launcher.launch_void(opt, [&] {
        auto buf = allocate<std::int64_t>(1, 64);
        sync(1, ham::f2f<&tk::fill_buffer>(buf, std::uint64_t{64},
                                           std::int64_t{1000}));
        sum_b = sync(1, ham::f2f<&tk::sum_buffer>(buf, std::uint64_t{64}));
        free(buf);
    }, "VH.appB");

    plat.sim().run();
    EXPECT_EQ(a.exit_code(), 0);
    EXPECT_EQ(b.exit_code(), 0);
    // Each app's buffer lives in its own VE process; no cross-talk.
    EXPECT_EQ(sum_a, 64 * 1 + 63 * 64 / 2);
    EXPECT_EQ(sum_b, 64 * 1000 + 63 * 64 / 2);
}

TEST(MultiApp, ManyConcurrentApps) {
    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    app_launcher launcher(plat);
    std::vector<app_handle*> handles;
    for (int app = 0; app < 6; ++app) {
        runtime_options opt;
        opt.backend = app % 2 == 0 ? backend_kind::vedma : backend_kind::veo;
        opt.targets = {app}; // each app drives its own VE
        handles.push_back(&launcher.launch_void(opt, [app] {
            for (int i = 0; i < 8; ++i) {
                ASSERT_EQ(sync(1, ham::f2f<&tk::add>(i, app * 10)),
                          app * 10 + i);
            }
        }, "VH.app" + std::to_string(app)));
    }
    plat.sim().run();
    for (auto* h : handles) {
        EXPECT_TRUE(h->finished());
        EXPECT_EQ(h->exit_code(), 0);
    }
}

TEST(MultiApp, AppsProgressConcurrentlyInVirtualTime) {
    // With one VE each and overlapping lifetimes, the total virtual makespan
    // must be far below the sum of the apps' individual makespans.
    auto solo_time = [] {
        aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
        runtime_options opt;
        opt.backend = backend_kind::veo; // slow protocol: visible makespan
        aurora::sim::time_ns end = 0;
        run(plat, opt, [&] {
            for (int i = 0; i < 10; ++i) sync(1, ham::f2f<&tk::add>(i, 1));
            end = aurora::sim::now();
        });
        return end;
    };
    const auto one = solo_time();

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    app_launcher launcher(plat);
    for (int app = 0; app < 4; ++app) {
        runtime_options opt;
        opt.backend = backend_kind::veo;
        opt.targets = {app};
        launcher.launch_void(opt, [] {
            for (int i = 0; i < 10; ++i) sync(1, ham::f2f<&tk::add>(i, 1));
        }, "VH.app" + std::to_string(app));
    }
    plat.sim().run();
    // Four overlapped apps finish in well under 4x one app's time.
    EXPECT_LT(plat.sim().now(), 2 * one);
}

} // namespace
} // namespace ham::offload
