// Property tests over message payload sizes, slot geometries and error
// propagation, across all backends.
#include <array>
#include <numeric>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

/// A functor whose serialised size is dominated by an N-byte payload; the
/// kernel checksums the payload so corruption cannot hide.
template <std::size_t N>
struct payload_functor {
    std::array<std::uint8_t, N> payload;
    std::uint64_t operator()() const {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < N; ++i) {
            sum = sum * 31 + payload[i];
        }
        return sum;
    }
};

template <std::size_t N>
std::uint64_t expected_checksum() {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < N; ++i) {
        sum = sum * 31 + std::uint8_t(i * 7 + 1);
    }
    return sum;
}

template <std::size_t N>
void roundtrip_payload(backend_kind kind) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = kind;
    run(plat, opt, [] {
        payload_functor<N> f{};
        for (std::size_t i = 0; i < N; ++i) {
            f.payload[i] = std::uint8_t(i * 7 + 1);
        }
        EXPECT_EQ(sync(1, f), expected_checksum<N>());
    });
}

class PayloadSizes : public ::testing::TestWithParam<backend_kind> {};

TEST_P(PayloadSizes, TinyPayload) {
    roundtrip_payload<8>(GetParam());
}
TEST_P(PayloadSizes, CacheLinePayload) {
    roundtrip_payload<64>(GetParam());
}
TEST_P(PayloadSizes, OddPayload) {
    roundtrip_payload<345>(GetParam());
}
TEST_P(PayloadSizes, KilobytePayload) {
    roundtrip_payload<1024>(GetParam());
}
TEST_P(PayloadSizes, NearSlotCapacityPayload) {
    // msg_size defaults to 4096; header + functor must still fit.
    roundtrip_payload<3900>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PayloadSizes,
                         ::testing::Values(backend_kind::loopback,
                                           backend_kind::veo,
                                           backend_kind::vedma),
                         [](const auto& param_info) {
                             switch (param_info.param) {
                                 case backend_kind::loopback: return "loopback";
                                 case backend_kind::veo: return "veo";
                                 default: return "vedma";
                             }
                         });

TEST(MessageLimits, OversizedMessageRejectedAtSend) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::loopback;
    run(plat, opt, [] {
        payload_functor<6000> f{}; // > default_max_msg_size
        EXPECT_THROW((void)async(1, f), aurora::check_error);
    });
}

TEST(MessageLimits, CustomMsgSizeAllowsBiggerFunctors) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    opt.msg_size = 16384;
    run(plat, opt, [] {
        // Still bounded by the ham::default_max_msg_size stack buffer in
        // async(); a 3900-byte payload exercises a custom slot size.
        payload_functor<3900> f{};
        for (std::size_t i = 0; i < 3900; ++i) {
            f.payload[i] = std::uint8_t(i * 7 + 1);
        }
        EXPECT_EQ(sync(1, f), expected_checksum<3900>());
    });
}

struct custom_error : std::runtime_error {
    custom_error() : std::runtime_error("sensor out of range: 42") {}
};

int throwing_with_message() {
    throw custom_error{};
}

TEST(ErrorPropagation, TargetExceptionTextReachesHost) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    run(plat, opt, [] {
        auto f = async(1, ham::f2f<&throwing_with_message>());
        try {
            (void)f.get();
            FAIL() << "expected offload_error";
        } catch (const offload_error& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("node 1"), std::string::npos);
            EXPECT_NE(what.find("sensor out of range: 42"), std::string::npos);
        }
    });
}

TEST(ErrorPropagation, SubsequentOffloadsUnaffectedByFailure) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    run(plat, opt, [] {
        auto bad = async(1, ham::f2f<&tk::failing_kernel>());
        EXPECT_THROW((void)bad.get(), offload_error);
        // The slot is recycled cleanly; normal traffic continues.
        for (int i = 0; i < 10; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&tk::add>(i, 5)), 5 + i);
        }
    });
}

} // namespace
} // namespace ham::offload
