// Property-style and stress tests of the runtime across all backends.
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

struct stress_params {
    backend_kind kind;
    std::uint32_t slots;
    const char* name;
};

class RuntimeStress : public ::testing::TestWithParam<stress_params> {};

TEST_P(RuntimeStress, RandomisedOffloadSequence) {
    const stress_params p = GetParam();
    runtime_options opt;
    opt.backend = p.kind;
    opt.msg_slots = p.slots;

    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(run(plat, opt, [&] {
        std::mt19937 rng(2026);
        std::vector<std::pair<future<int>, int>> pending;
        int completed = 0;
        for (int step = 0; step < 200; ++step) {
            const bool do_send = pending.empty() || (rng() % 3 != 0);
            if (do_send) {
                const int a = int(rng() % 1000);
                const int b = int(rng() % 1000);
                pending.emplace_back(async(1, ham::f2f<&tk::add>(a, b)), a + b);
            } else {
                const std::size_t idx = rng() % pending.size();
                EXPECT_EQ(pending[idx].first.get(), pending[idx].second);
                pending.erase(pending.begin() + std::ptrdiff_t(idx));
                ++completed;
            }
        }
        for (auto& [f, expected] : pending) {
            EXPECT_EQ(f.get(), expected);
            ++completed;
        }
        EXPECT_GT(completed, 100);
    }), 0);
}

TEST_P(RuntimeStress, DeterministicVirtualTime) {
    const stress_params p = GetParam();
    auto run_once = [&]() -> aurora::sim::time_ns {
        runtime_options opt;
        opt.backend = p.kind;
        opt.msg_slots = p.slots;
        aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
        aurora::sim::time_ns end_time = 0;
        run(plat, opt, [&] {
            for (int i = 0; i < 10; ++i) {
                sync(1, ham::f2f<&tk::add>(i, i));
            }
            end_time = aurora::sim::now();
        });
        return end_time;
    };
    const auto t1 = run_once();
    const auto t2 = run_once();
    EXPECT_EQ(t1, t2);
    EXPECT_GT(t1, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, RuntimeStress,
    ::testing::Values(stress_params{backend_kind::loopback, 8, "loopback"},
                      stress_params{backend_kind::loopback, 2, "loopback_tiny"},
                      stress_params{backend_kind::veo, 8, "veo"},
                      stress_params{backend_kind::veo, 2, "veo_tiny"},
                      stress_params{backend_kind::vedma, 8, "vedma"},
                      stress_params{backend_kind::vedma, 2, "vedma_tiny"}),
    [](const ::testing::TestParamInfo<stress_params>& param_info) {
        return param_info.param.name;
    });

/// The increment-counter property deserves a real kernel.
namespace {
void increment_cell(buffer_ptr<std::int64_t> cell) {
    cell[0] += 1;
}
} // namespace

class ExactlyOnce : public ::testing::TestWithParam<stress_params> {};

TEST_P(ExactlyOnce, CounterMatchesOffloadCount) {
    const stress_params p = GetParam();
    runtime_options opt;
    opt.backend = p.kind;
    opt.msg_slots = p.slots;
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(run(plat, opt, [&] {
        auto cell = allocate<std::int64_t>(1, 1);
        const std::int64_t zero = 0;
        put(&zero, cell, 1).get();
        constexpr int n = 30;
        std::vector<future<void>> fs;
        for (int i = 0; i < n; ++i) {
            fs.push_back(async(1, ham::f2f<&increment_cell>(cell)));
        }
        for (auto& f : fs) f.get();
        std::int64_t v = 0;
        get(cell, &v, 1).get();
        EXPECT_EQ(v, n);
        free(cell);
    }), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ExactlyOnce,
    ::testing::Values(stress_params{backend_kind::loopback, 4, "loopback"},
                      stress_params{backend_kind::veo, 4, "veo"},
                      stress_params{backend_kind::vedma, 4, "vedma"}),
    [](const ::testing::TestParamInfo<stress_params>& param_info) {
        return param_info.param.name;
    });

} // namespace
} // namespace ham::offload
