// ABI compatibility guard (paper Sec. III-E): the sorted-typeid translation
// scheme "requires the used C++ compilers to have a compatible ABI" — the
// setup C-API verifies a type-table fingerprint before ham_main ever runs.
#include <gtest/gtest.h>

#include "offload/app_image.hpp"
#include "offload/offload.hpp"
#include "support/sim_fixture.hpp"
#include "tests/offload/test_kernels.hpp"
#include "veo/veo_api.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

TEST(AbiGuard, FingerprintsAgreeAcrossImages) {
    // Same catalog, different layouts: the fingerprint hashes the *sorted*
    // names, so it is layout-independent — like the keys themselves.
    const auto host = ham::handler_registry::build(host_image_options());
    const auto target = ham::handler_registry::build(ve_image_options());
    EXPECT_EQ(host.fingerprint(), target.fingerprint());
    EXPECT_NE(host.fingerprint(), 0u);
}

TEST(AbiGuard, FingerprintDeterministicAcrossBuilds) {
    const auto a = ham::handler_registry::build(host_image_options());
    const auto b = ham::handler_registry::build(host_image_options());
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(AbiGuard, CompatibleBinariesPassEndToEnd) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    EXPECT_EQ(run(plat, opt, [] {
        EXPECT_EQ(sync(1, ham::f2f<&tk::add>(1, 1)), 2);
    }), 0);
}

TEST(AbiGuard, MismatchedFingerprintRejectedAtSetup) {
    // Drive the raw deployment path with a corrupted fingerprint — the VE
    // side must refuse before the message loop starts, exactly as a binary
    // built with an incompatible name-mangling scheme would be.
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    aurora::veos::veos_system sys(plat);
    sys.install_image(ham_app_image());

    aurora::testing::run_as_vh(plat, [&] {
        aurora::veo::proc_guard h(sys, 0);
        const auto lib = aurora::veo::veo_load_library(h.get(), app_image_name);
        const auto sym = aurora::veo::veo_get_sym(h.get(), lib, sym_setup_veo);
        auto* ctx = aurora::veo::veo_context_open(h.get());

        aurora::veo::veo_args* args = aurora::veo::veo_args_alloc();
        args->set_u64(0, 0x1000); // comm addr (never reached)
        args->set_u64(1, 8);
        args->set_u64(2, 4096);
        args->set_i64(3, 1);
        args->set_u64(4, 0xBAD0BAD0BAD0BAD0ULL); // wrong fingerprint
        std::uint64_t ret = 0;
        EXPECT_EQ(aurora::veo::veo_call_sync(ctx, sym, args, &ret),
                  aurora::veo::VEO_COMMAND_OK);
        EXPECT_EQ(ret, 1u); // setup reports the ABI mismatch
        aurora::veo::veo_args_free(args);
    });
}

} // namespace
} // namespace ham::offload
