// Table II API tests over the loopback backend.
#include <numeric>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"
#include "util/check.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

using tk::add;
HAM_REGISTER_FUNCTION(add);

runtime_options loopback_opts() {
    runtime_options opt;
    opt.backend = backend_kind::loopback;
    return opt;
}

void run_lb(const std::function<void()>& body,
            runtime_options opt = loopback_opts()) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(run(plat, opt, body), 0);
}

TEST(OffloadApi, SyncOffloadStaticF2F) {
    run_lb([] {
        const int r = sync(1, ham::f2f<&tk::add>(40, 2));
        EXPECT_EQ(r, 42);
    });
}

TEST(OffloadApi, SyncOffloadDynamicF2F) {
    run_lb([] {
        const int r = sync(1, ham::f2f(&tk::add, 1, 2));
        EXPECT_EQ(r, 3);
    });
}

TEST(OffloadApi, AsyncReturnsFuture) {
    run_lb([] {
        auto f = async(1, ham::f2f<&tk::add>(20, 22));
        EXPECT_TRUE(f.valid());
        EXPECT_EQ(f.get(), 42);
    });
}

TEST(OffloadApi, FutureTestEventuallyTrue) {
    run_lb([] {
        auto f = async(1, ham::f2f<&tk::add>(5, 5));
        // Poll until ready; the loopback target needs virtual time to run.
        int rounds = 0;
        while (!f.test() && rounds < 100000) {
            ++rounds;
        }
        EXPECT_EQ(f.get(), 10);
    });
}

TEST(OffloadApi, VoidOffload) {
    run_lb([] {
        auto f = async(1, ham::f2f<&tk::empty_kernel>());
        EXPECT_NO_THROW(f.get());
    });
}

TEST(OffloadApi, OffloadToSelfExecutesLocally) {
    run_lb([] {
        EXPECT_EQ(sync(0, ham::f2f<&tk::add>(2, 3)), 5);
        auto f = async(0, ham::f2f<&tk::add>(1, 1));
        EXPECT_TRUE(f.test());
        EXPECT_EQ(f.get(), 2);
    });
}

TEST(OffloadApi, AllocatePutGetFree) {
    run_lb([] {
        std::vector<std::int64_t> host{1, 2, 3, 4, 5};
        auto buf = allocate<std::int64_t>(1, host.size());
        EXPECT_TRUE(buf.valid());
        EXPECT_EQ(buf.node(), 1);
        put(host.data(), buf, host.size()).get();

        std::vector<std::int64_t> back(host.size(), 0);
        get(buf, back.data(), back.size()).get();
        EXPECT_EQ(host, back);
        free(buf);
    });
}

TEST(OffloadApi, KernelReadsTargetBuffer) {
    run_lb([] {
        std::vector<std::int64_t> host(100);
        std::iota(host.begin(), host.end(), 1);
        auto buf = allocate<std::int64_t>(1, host.size());
        put(host.data(), buf, host.size()).get();
        const std::int64_t total =
            sync(1, ham::f2f<&tk::sum_buffer>(buf, host.size()));
        EXPECT_EQ(total, 5050);
        free(buf);
    });
}

TEST(OffloadApi, KernelWritesTargetBuffer) {
    run_lb([] {
        auto buf = allocate<std::int64_t>(1, 10);
        sync(1, ham::f2f<&tk::fill_buffer>(buf, std::uint64_t{10},
                                           std::int64_t{100}));
        std::vector<std::int64_t> back(10);
        get(buf, back.data(), back.size()).get();
        for (int i = 0; i < 10; ++i) EXPECT_EQ(back[std::size_t(i)], 100 + i);
        free(buf);
    });
}

TEST(OffloadApi, InnerProductMatchesPaperExample) {
    // The paper's Fig. 2 program, condensed.
    run_lb([] {
        constexpr std::size_t n = 1024;
        std::vector<double> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = double(i);
            b[i] = 2.0;
        }
        const node_t target = 1;
        auto a_t = allocate<double>(target, n);
        auto b_t = allocate<double>(target, n);
        put(a.data(), a_t, n).get();
        put(b.data(), b_t, n).get();
        auto result = async(target, ham::f2f<&tk::inner_product>(a_t, b_t, n));
        const double expected = std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
        EXPECT_DOUBLE_EQ(result.get(), expected);
        free(a_t);
        free(b_t);
    });
}

TEST(OffloadApi, CopySameNode) {
    run_lb([] {
        std::vector<std::int64_t> host{7, 8, 9};
        auto src = allocate<std::int64_t>(1, 3);
        auto dst = allocate<std::int64_t>(1, 3);
        put(host.data(), src, 3).get();
        copy(src, dst, 3).get();
        std::vector<std::int64_t> back(3);
        get(dst, back.data(), 3).get();
        EXPECT_EQ(back, host);
        free(src);
        free(dst);
    });
}

TEST(OffloadApi, CopyCrossNode) {
    runtime_options opt = loopback_opts();
    opt.targets = {0, 0}; // two loopback targets
    run_lb(
        [] {
            ASSERT_EQ(num_nodes(), 3u);
            std::vector<std::int64_t> host{4, 5, 6};
            auto src = allocate<std::int64_t>(1, 3);
            auto dst = allocate<std::int64_t>(2, 3);
            put(host.data(), src, 3).get();
            copy(src, dst, 3).get();
            std::vector<std::int64_t> back(3);
            get(dst, back.data(), 3).get();
            EXPECT_EQ(back, host);
            free(src);
            free(dst);
        },
        opt);
}

TEST(OffloadApi, TargetExceptionSurfacesAsOffloadError) {
    run_lb([] {
        auto f = async(1, ham::f2f<&tk::failing_kernel>());
        EXPECT_THROW((void)f.get(), offload_error);
    });
}

TEST(OffloadApi, MigratableStringArgument) {
    run_lb([] {
        ham::migratable<std::string> s(std::string("twelve chars"));
        EXPECT_EQ(sync(1, ham::f2f<&tk::string_length>(s)), 12u);
    });
}

TEST(OffloadApi, NodeQueries) {
    run_lb([] {
        EXPECT_EQ(this_node(), 0);
        EXPECT_EQ(num_nodes(), 2u);
        const node_descriptor host = get_node_descriptor(0);
        EXPECT_EQ(host.name, "host");
        const node_descriptor t = get_node_descriptor(1);
        EXPECT_EQ(t.node, 1);
        EXPECT_NE(t.device_type, "");
        EXPECT_THROW((void)get_node_descriptor(2), aurora::check_error);
    });
}

TEST(OffloadApi, ManyOutstandingOffloadsWrapSlots) {
    // More in-flight offloads than slots forces harvesting + slot reuse.
    run_lb([] {
        std::vector<future<int>> futures;
        for (int i = 0; i < 50; ++i) {
            futures.push_back(async(1, ham::f2f<&tk::add>(i, 1000)));
        }
        for (int i = 0; i < 50; ++i) {
            EXPECT_EQ(futures[std::size_t(i)].get(), 1000 + i);
        }
    });
}

TEST(OffloadApi, ResultsCollectableInAnyOrder) {
    run_lb([] {
        auto f1 = async(1, ham::f2f<&tk::add>(1, 0));
        auto f2 = async(1, ham::f2f<&tk::add>(2, 0));
        auto f3 = async(1, ham::f2f<&tk::add>(3, 0));
        EXPECT_EQ(f3.get(), 3);
        EXPECT_EQ(f1.get(), 1);
        EXPECT_EQ(f2.get(), 2);
    });
}

TEST(OffloadApi, InvalidNodeThrows) {
    run_lb([] {
        EXPECT_THROW((void)allocate<int>(5, 10), aurora::check_error);
        EXPECT_THROW((void)sync(9, ham::f2f<&tk::add>(1, 2)),
                     aurora::check_error);
    });
}

TEST(OffloadApi, ApiOutsideRunThrows) {
    EXPECT_THROW((void)num_nodes(), aurora::check_error);
}

TEST(OffloadApi, HostMainReturnValuePropagates) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt = loopback_opts();
    EXPECT_EQ(run(plat, opt, []() -> int { return 17; }), 17);
}

TEST(OffloadApi, HostMainExceptionPropagates) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt = loopback_opts();
    EXPECT_THROW(run(plat, opt, [] { throw std::logic_error("host bug"); }),
                 std::logic_error);
}

} // namespace
} // namespace ham::offload
