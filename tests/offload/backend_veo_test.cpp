// End-to-end tests of the VEO-based protocol (paper Sec. III-D, Fig. 5).
#include <numeric>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

runtime_options veo_opts() {
    runtime_options opt;
    opt.backend = backend_kind::veo;
    opt.targets = {0};
    return opt;
}

void run_veo(const std::function<void()>& body,
             runtime_options opt = veo_opts(),
             aurora::sim::platform_config cfg =
                 aurora::sim::platform_config::test_machine()) {
    aurora::sim::platform plat(std::move(cfg));
    ASSERT_EQ(run(plat, opt, body), 0);
}

TEST(BackendVeo, SyncOffload) {
    run_veo([] { EXPECT_EQ(sync(1, ham::f2f<&tk::add>(40, 2)), 42); });
}

TEST(BackendVeo, AsyncOffloadSequence) {
    run_veo([] {
        std::vector<future<int>> fs;
        for (int i = 0; i < 10; ++i) {
            fs.push_back(async(1, ham::f2f<&tk::add>(i, i)));
        }
        for (int i = 0; i < 10; ++i) {
            EXPECT_EQ(fs[std::size_t(i)].get(), 2 * i);
        }
    });
}

TEST(BackendVeo, PutGetThroughPrivilegedDma) {
    run_veo([] {
        std::vector<double> host(4096);
        std::iota(host.begin(), host.end(), 0.5);
        auto buf = allocate<double>(1, host.size());
        put(host.data(), buf, host.size()).get();
        std::vector<double> back(host.size());
        get(buf, back.data(), back.size()).get();
        EXPECT_EQ(host, back);
        free(buf);
    });
}

TEST(BackendVeo, KernelTouchesVeMemory) {
    run_veo([] {
        auto buf = allocate<std::int64_t>(1, 64);
        sync(1, ham::f2f<&tk::fill_buffer>(buf, std::uint64_t{64},
                                           std::int64_t{7}));
        const std::int64_t total =
            sync(1, ham::f2f<&tk::sum_buffer>(buf, std::uint64_t{64}));
        // sum_{i=0}^{63} (7 + i) = 64*7 + 63*64/2
        EXPECT_EQ(total, 64 * 7 + 63 * 64 / 2);
        free(buf);
    });
}

TEST(BackendVeo, EmptyOffloadCostMatchesFig9) {
    // Fig. 9: HAM-Offload over VEO costs ~432 us per empty offload (5.4x the
    // native VEO call).
    run_veo([] {
        // Warm up (first offload includes cold paths).
        sync(1, ham::f2f<&tk::empty_kernel>());
        const aurora::sim::time_ns before = aurora::sim::now();
        constexpr int reps = 20;
        for (int i = 0; i < reps; ++i) {
            sync(1, ham::f2f<&tk::empty_kernel>());
        }
        const double per_offload =
            double(aurora::sim::now() - before) / reps;
        EXPECT_NEAR(per_offload, 432'000.0, 45'000.0);
    });
}

TEST(BackendVeo, TargetExceptionPropagates) {
    run_veo([] {
        auto f = async(1, ham::f2f<&tk::failing_kernel>());
        EXPECT_THROW((void)f.get(), offload_error);
    });
}

TEST(BackendVeo, DescriptorIdentifiesVe) {
    run_veo([] {
        const node_descriptor d = get_node_descriptor(1);
        EXPECT_EQ(d.name, "VE0");
        EXPECT_NE(d.device_type.find("VEO"), std::string::npos);
        EXPECT_EQ(d.ve_id, 0);
    });
}

TEST(BackendVeo, InnerProductOnVe) {
    run_veo([] {
        constexpr std::size_t n = 512;
        std::vector<double> a(n, 1.5), b(n, 2.0);
        auto a_t = allocate<double>(1, n);
        auto b_t = allocate<double>(1, n);
        put(a.data(), a_t, n).get();
        put(b.data(), b_t, n).get();
        EXPECT_DOUBLE_EQ(sync(1, ham::f2f<&tk::inner_product>(a_t, b_t, n)),
                         1.5 * 2.0 * n);
        free(a_t);
        free(b_t);
    });
}

TEST(BackendVeo, SlotWrapAroundManyMessages) {
    runtime_options opt = veo_opts();
    opt.msg_slots = 4;
    run_veo(
        [] {
            for (int i = 0; i < 25; ++i) {
                EXPECT_EQ(sync(1, ham::f2f<&tk::add>(i, 100)), 100 + i);
            }
        },
        opt);
}

TEST(BackendVeo, MultipleVeTargets) {
    runtime_options opt = veo_opts();
    opt.targets = {0, 3, 7};
    run_veo(
        [] {
            EXPECT_EQ(num_nodes(), 4u);
            for (node_t n = 1; n <= 3; ++n) {
                EXPECT_EQ(sync(n, ham::f2f<&tk::add>(int(n), 10)), 10 + n);
            }
            EXPECT_EQ(get_node_descriptor(2).name, "VE3");
            EXPECT_EQ(get_node_descriptor(3).name, "VE7");
        },
        opt, aurora::sim::platform_config::a300_8());
}

} // namespace
} // namespace ham::offload
