// Wire-protocol encoding units and end-to-end slot-generation wraparound.
#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;
using namespace protocol;

TEST(ProtocolEncoding, FlagRoundTrip) {
    flag_word f;
    f.kind = msg_kind::user;
    f.gen = 0xAB;
    f.result_slot_plus1 = 0x1234;
    f.epoch = 0xCD;
    f.len = 0xADBEEF; // 24-bit length field
    const flag_word g = decode_flag(encode_flag(f));
    EXPECT_EQ(g.kind, msg_kind::user);
    EXPECT_EQ(g.gen, 0xAB);
    EXPECT_EQ(g.result_slot_plus1, 0x1234);
    EXPECT_EQ(g.epoch, 0xCD);
    EXPECT_EQ(g.len, 0xADBEEFu);
}

TEST(ProtocolEncoding, LenCapsAt24Bits) {
    flag_word f;
    f.kind = msg_kind::user;
    f.len = max_flag_len;
    EXPECT_EQ(decode_flag(encode_flag(f)).len, max_flag_len);
}

TEST(ProtocolEncoding, EpochZeroKeepsLegacyEncoding) {
    // Epoch 0 (the initial incarnation) must encode byte-identically to the
    // pre-heal wire format so the fault-free hot path is unchanged.
    flag_word f;
    f.kind = msg_kind::user;
    f.gen = 7;
    f.result_slot_plus1 = 3;
    f.len = 128;
    const std::uint64_t raw = encode_flag(f);
    EXPECT_EQ((raw >> 32) & 0xFF, 0u);
    f.epoch = 9;
    EXPECT_EQ(encode_flag(f) & ~(std::uint64_t{0xFF} << 32), raw);
}

TEST(ProtocolEncoding, EpochWrapsSkippingZero) {
    // Epoch 0 is reserved for the initial incarnation; 255 wraps to 1 so a
    // respawned target can never alias a fresh one.
    EXPECT_EQ(next_epoch(0), 1);
    EXPECT_EQ(next_epoch(1), 2);
    EXPECT_EQ(next_epoch(254), 255);
    EXPECT_EQ(next_epoch(255), 1);
}

TEST(ProtocolEncoding, EmptyFlagIsZero) {
    flag_word f;
    EXPECT_EQ(encode_flag(f), 0u);
    EXPECT_FALSE(decode_flag(0).present());
}

TEST(ProtocolEncoding, AllKindsSurvive) {
    for (auto k : {msg_kind::user, msg_kind::terminate, msg_kind::data_put,
                   msg_kind::data_get}) {
        flag_word f;
        f.kind = k;
        EXPECT_EQ(decode_flag(encode_flag(f)).kind, k);
        EXPECT_TRUE(decode_flag(encode_flag(f)).present());
    }
}

TEST(ProtocolEncoding, GenWrapsSkippingZero) {
    // 0 is reserved for "never used"; 255 wraps to 1.
    EXPECT_EQ(next_gen(0), 1);
    EXPECT_EQ(next_gen(1), 2);
    EXPECT_EQ(next_gen(254), 255);
    EXPECT_EQ(next_gen(255), 1);
    // The full cycle never yields 0.
    std::uint8_t g = 0;
    for (int i = 0; i < 600; ++i) {
        g = next_gen(g);
        EXPECT_NE(g, 0);
    }
}

TEST(ProtocolEncoding, RegionLayoutGeometry) {
    region_layout r{.slots = 8, .msg_size = 4096};
    EXPECT_EQ(r.flags_bytes(), 64u);
    EXPECT_EQ(r.buffers_bytes(), 8u * 4096u);
    EXPECT_EQ(r.flag_offset(0), 0u);
    EXPECT_EQ(r.flag_offset(7), 56u);
    EXPECT_EQ(r.buffer_offset(0), 64u);
    EXPECT_EQ(r.buffer_offset(1), 64u + 4096u);
    comm_layout c{.recv = r, .send = r};
    EXPECT_EQ(c.send_base(), r.total_bytes());
    EXPECT_EQ(c.total_bytes(), 2 * r.total_bytes());
}

class GenWraparound : public ::testing::TestWithParam<backend_kind> {};

TEST_P(GenWraparound, SingleSlotSurvives600Messages) {
    // With one slot, message #N uses generation (N % 255)+1 — the 8-bit
    // counter wraps twice in 600 messages; stale-flag disambiguation must
    // hold throughout.
    runtime_options opt;
    opt.backend = GetParam();
    opt.msg_slots = 1;
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(run(plat, opt, [] {
        for (int i = 0; i < 600; ++i) {
            ASSERT_EQ(sync(1, ham::f2f<&tk::add>(i, 1)), i + 1) << "msg " << i;
        }
    }), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, GenWraparound,
                         ::testing::Values(backend_kind::veo,
                                           backend_kind::vedma),
                         [](const auto& param_info) {
                             return param_info.param == backend_kind::veo
                                        ? "veo"
                                        : "vedma";
                         });

} // namespace
} // namespace ham::offload
