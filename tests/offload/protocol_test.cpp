// Wire-protocol encoding units and end-to-end slot-generation wraparound.
#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;
using namespace protocol;

TEST(ProtocolEncoding, FlagRoundTrip) {
    flag_word f;
    f.kind = msg_kind::user;
    f.gen = 0xAB;
    f.result_slot_plus1 = 0x1234;
    f.epoch = 0xCD;
    f.len = 0xADBEEF; // 24-bit length field
    const flag_word g = decode_flag(encode_flag(f));
    EXPECT_EQ(g.kind, msg_kind::user);
    EXPECT_EQ(g.gen, 0xAB);
    EXPECT_EQ(g.result_slot_plus1, 0x1234);
    EXPECT_EQ(g.epoch, 0xCD);
    EXPECT_EQ(g.len, 0xADBEEFu);
}

TEST(ProtocolEncoding, LenCapsAt24Bits) {
    flag_word f;
    f.kind = msg_kind::user;
    f.len = max_flag_len;
    EXPECT_EQ(decode_flag(encode_flag(f)).len, max_flag_len);
}

TEST(ProtocolEncoding, EpochZeroKeepsLegacyEncoding) {
    // Epoch 0 (the initial incarnation) must encode byte-identically to the
    // pre-heal wire format so the fault-free hot path is unchanged.
    flag_word f;
    f.kind = msg_kind::user;
    f.gen = 7;
    f.result_slot_plus1 = 3;
    f.len = 128;
    const std::uint64_t raw = encode_flag(f);
    EXPECT_EQ((raw >> 32) & 0xFF, 0u);
    f.epoch = 9;
    EXPECT_EQ(encode_flag(f) & ~(std::uint64_t{0xFF} << 32), raw);
}

TEST(ProtocolEncoding, EpochWrapsSkippingZero) {
    // Epoch 0 is reserved for the initial incarnation; 255 wraps to 1 so a
    // respawned target can never alias a fresh one.
    EXPECT_EQ(next_epoch(0), 1);
    EXPECT_EQ(next_epoch(1), 2);
    EXPECT_EQ(next_epoch(254), 255);
    EXPECT_EQ(next_epoch(255), 1);
}

TEST(ProtocolEncoding, EmptyFlagIsZero) {
    flag_word f;
    EXPECT_EQ(encode_flag(f), 0u);
    EXPECT_FALSE(decode_flag(0).present());
}

TEST(ProtocolEncoding, AllKindsSurvive) {
    for (auto k : {msg_kind::user, msg_kind::terminate, msg_kind::data_put,
                   msg_kind::data_get}) {
        flag_word f;
        f.kind = k;
        EXPECT_EQ(decode_flag(encode_flag(f)).kind, k);
        EXPECT_TRUE(decode_flag(encode_flag(f)).present());
    }
}

TEST(ProtocolEncoding, GenWrapsSkippingZero) {
    // 0 is reserved for "never used"; 255 wraps to 1.
    EXPECT_EQ(next_gen(0), 1);
    EXPECT_EQ(next_gen(1), 2);
    EXPECT_EQ(next_gen(254), 255);
    EXPECT_EQ(next_gen(255), 1);
    // The full cycle never yields 0.
    std::uint8_t g = 0;
    for (int i = 0; i < 600; ++i) {
        g = next_gen(g);
        EXPECT_NE(g, 0);
    }
}

TEST(ProtocolEncoding, RegionLayoutGeometry) {
    region_layout r{.slots = 8, .msg_size = 4096};
    EXPECT_EQ(r.flags_bytes(), 64u);
    EXPECT_EQ(r.buffers_bytes(), 8u * 4096u);
    EXPECT_EQ(r.flag_offset(0), 0u);
    EXPECT_EQ(r.flag_offset(7), 56u);
    EXPECT_EQ(r.buffer_offset(0), 64u);
    EXPECT_EQ(r.buffer_offset(1), 64u + 4096u);
    comm_layout c{.recv = r, .send = r};
    EXPECT_EQ(c.send_base(), r.total_bytes());
    EXPECT_EQ(c.total_bytes(), 2 * r.total_bytes());
}

class GenWraparound : public ::testing::TestWithParam<backend_kind> {};

TEST_P(GenWraparound, SingleSlotSurvives600Messages) {
    // With one slot, message #N uses generation (N % 255)+1 — the 8-bit
    // counter wraps twice in 600 messages; stale-flag disambiguation must
    // hold throughout.
    runtime_options opt;
    opt.backend = GetParam();
    opt.msg_slots = 1;
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(run(plat, opt, [] {
        for (int i = 0; i < 600; ++i) {
            ASSERT_EQ(sync(1, ham::f2f<&tk::add>(i, 1)), i + 1) << "msg " << i;
        }
    }), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, GenWraparound,
                         ::testing::Values(backend_kind::veo,
                                           backend_kind::vedma),
                         [](const auto& param_info) {
                             return param_info.param == backend_kind::veo
                                        ? "veo"
                                        : "vedma";
                         });

// --- cluster routing header (aurora::net) ------------------------------------

TEST(RoutingHeader, RoundTrip) {
    routing_header h;
    h.src_node = 3;
    h.dst_node = 7;
    h.target = 2;
    h.kind = msg_kind::batch;
    h.epoch = 0xAB;
    h.hops = 2;
    h.flags = routing_flags::result;
    h.ticket = 0x1122334455667788ULL;
    std::byte buf[routing_header_bytes];
    encode_routing(h, buf);
    ASSERT_TRUE(is_routed(buf, sizeof(buf)));
    const routing_header g = decode_routing(buf);
    EXPECT_EQ(g.src_node, 3);
    EXPECT_EQ(g.dst_node, 7);
    EXPECT_EQ(g.target, 2);
    EXPECT_EQ(g.kind, msg_kind::batch);
    EXPECT_EQ(g.epoch, 0xAB);
    EXPECT_EQ(g.hops, 2);
    EXPECT_TRUE(g.is_result());
    EXPECT_EQ(g.ticket, 0x1122334455667788ULL);
}

TEST(RoutingHeader, Node0FramesKeepLegacyEncoding) {
    // A frame addressed to node 0 — the origin VH, i.e. every pre-cluster
    // address — must be byte-identical to the bare payload: single-node runs
    // never see a routing header on the wire.
    const std::byte payload[5] = {std::byte{1}, std::byte{2}, std::byte{3},
                                  std::byte{4}, std::byte{5}};
    routing_header h;
    h.dst_node = 0;
    h.kind = msg_kind::user;
    const std::vector<std::byte> frame =
        make_routed_frame(h, payload, sizeof(payload));
    ASSERT_EQ(frame.size(), sizeof(payload));
    EXPECT_EQ(std::memcmp(frame.data(), payload, sizeof(payload)), 0);
    EXPECT_FALSE(is_routed(frame.data(), frame.size()));
}

TEST(RoutingHeader, ResultFramesToNode0KeepTheirHeader) {
    // Completion tickets only exist in the header, so result frames stay
    // routed even though they travel toward node 0.
    routing_header h;
    h.src_node = 2;
    h.dst_node = 0;
    h.flags = routing_flags::result;
    h.ticket = 42;
    const std::vector<std::byte> frame = make_routed_frame(h, nullptr, 0);
    ASSERT_EQ(frame.size(), routing_header_bytes);
    ASSERT_TRUE(is_routed(frame.data(), frame.size()));
    const routing_header g = decode_routing(frame.data());
    EXPECT_TRUE(g.is_result());
    EXPECT_EQ(g.ticket, 42u);
}

TEST(RoutingHeader, RemoteFramePrependsHeaderAndLen) {
    const std::byte payload[3] = {std::byte{9}, std::byte{8}, std::byte{7}};
    routing_header h;
    h.dst_node = 4;
    h.target = 1;
    const std::vector<std::byte> frame =
        make_routed_frame(h, payload, sizeof(payload));
    ASSERT_EQ(frame.size(), routing_header_bytes + sizeof(payload));
    ASSERT_TRUE(is_routed(frame.data(), frame.size()));
    const routing_header g = decode_routing(frame.data());
    EXPECT_EQ(g.dst_node, 4);
    EXPECT_EQ(g.len, sizeof(payload));
    EXPECT_EQ(std::memcmp(frame.data() + routing_header_bytes, payload,
                          sizeof(payload)),
              0);
}

TEST(RoutingHeader, EpochTravelsIndependentlyOfInnerWire) {
    // The routing header's epoch tags the *remote incarnation* the origin
    // observed; the inner payload is re-framed by the destination's own slot
    // protocol, whose epoch-stamped flag words are untouched by routing.
    flag_word inner;
    inner.kind = msg_kind::user;
    inner.gen = 5;
    inner.epoch = 3;
    inner.len = 8;
    const std::uint64_t raw = encode_flag(inner);
    std::byte payload[sizeof(raw)];
    std::memcpy(payload, &raw, sizeof(raw));
    routing_header h;
    h.dst_node = 1;
    h.epoch = next_epoch(255); // wraps to 1, never 0
    const std::vector<std::byte> frame =
        make_routed_frame(h, payload, sizeof(payload));
    const routing_header g = decode_routing(frame.data());
    EXPECT_EQ(g.epoch, 1);
    std::uint64_t inner_raw = 0;
    std::memcpy(&inner_raw, frame.data() + routing_header_bytes,
                sizeof(inner_raw));
    EXPECT_EQ(decode_flag(inner_raw).epoch, 3);
    EXPECT_EQ(decode_flag(inner_raw).gen, 5);
}

TEST(RoutingHeader, RejectsBadMagicVersionAndShortFrames) {
    routing_header h;
    h.dst_node = 1;
    std::vector<std::byte> frame = make_routed_frame(h, nullptr, 0);
    EXPECT_TRUE(is_routed(frame.data(), frame.size()));
    EXPECT_FALSE(is_routed(frame.data(), routing_header_bytes - 1));
    std::vector<std::byte> bad_magic = frame;
    bad_magic[0] = std::byte{0x00};
    EXPECT_FALSE(is_routed(bad_magic.data(), bad_magic.size()));
    std::vector<std::byte> bad_version = frame;
    bad_version[2] = std::byte{routing_version + 1};
    EXPECT_FALSE(is_routed(bad_version.data(), bad_version.size()));
}

TEST(RoutingHeader, AbsentTraceContextEncodesAsZero) {
    // The former reserved bytes 13..15 / 20..23 now carry the aurora::obs
    // trace context — but only when one is present. A header without a
    // context (the default) must still encode those bytes as zero, so an
    // untraced frame is byte-identical to the pre-obs wire.
    routing_header h;
    h.src_node = 0xFFFF;
    h.dst_node = 0xFFFF;
    h.target = 0xFFFF;
    h.epoch = 0xFF;
    h.hops = 0xFF;
    h.flags = 0xFF;
    h.ticket = ~0ULL;
    std::byte buf[routing_header_bytes];
    encode_routing(h, buf);
    EXPECT_EQ(buf[13], std::byte{0});
    EXPECT_EQ(buf[14], std::byte{0});
    EXPECT_EQ(buf[15], std::byte{0});
    for (std::size_t i = 20; i < 24; ++i) {
        EXPECT_EQ(buf[i], std::byte{0}) << "trace-context byte " << i;
    }
    EXPECT_FALSE(decode_routing(buf).has_trace_context());
}

TEST(RoutingHeader, TraceContextRoundTrip) {
    routing_header h;
    h.src_node = 3;
    h.dst_node = 2;
    h.target = 1;
    h.epoch = 5;
    h.ticket = 42;
    h.obs_flags = obs_flags::trace_context;
    h.parent_span = 0xBEEF;
    h.trace_lo = 0xDEADC0DE;
    std::byte buf[routing_header_bytes];
    encode_routing(h, buf);
    const routing_header g = decode_routing(buf);
    EXPECT_TRUE(g.has_trace_context());
    EXPECT_EQ(g.obs_flags, obs_flags::trace_context);
    EXPECT_EQ(g.parent_span, 0xBEEF);
    EXPECT_EQ(g.trace_lo, 0xDEADC0DEu);
    // The context rides alongside the legacy fields without perturbing them.
    EXPECT_EQ(g.src_node, 3);
    EXPECT_EQ(g.dst_node, 2);
    EXPECT_EQ(g.target, 1);
    EXPECT_EQ(g.epoch, 5);
    EXPECT_EQ(g.ticket, 42u);
}

TEST(RoutingHeader, TraceContextDoesNotChangeFrameSize) {
    // Context present or absent, the header is the same fixed 32 bytes —
    // the obs bits reuse formerly-reserved space, they never extend it.
    routing_header plain;
    plain.dst_node = 1;
    routing_header traced = plain;
    traced.obs_flags = obs_flags::trace_context;
    traced.trace_lo = 7;
    const std::byte payload[4] = {};
    EXPECT_EQ(make_routed_frame(plain, payload, sizeof(payload)).size(),
              make_routed_frame(traced, payload, sizeof(payload)).size());
}

} // namespace
} // namespace ham::offload
