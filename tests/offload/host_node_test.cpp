// Node 0 (the host itself) as a first-class node of the Table II API.
#include <numeric>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

void run_lb(const std::function<void()>& body) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    ASSERT_EQ(run(plat, opt, body), 0);
}

TEST(HostNode, AllocatePutGetFree) {
    run_lb([] {
        std::vector<double> v{1.5, 2.5, 3.5};
        auto buf = allocate<double>(0, v.size());
        EXPECT_EQ(buf.node(), 0);
        put(v.data(), buf, v.size()).get();
        std::vector<double> back(v.size());
        get(buf, back.data(), back.size()).get();
        EXPECT_EQ(back, v);
        free(buf);
    });
}

TEST(HostNode, HostBufferZeroInitialised) {
    run_lb([] {
        auto buf = allocate<std::int64_t>(0, 16);
        std::vector<std::int64_t> back(16, -1);
        get(buf, back.data(), back.size()).get();
        for (auto x : back) EXPECT_EQ(x, 0);
        free(buf);
    });
}

TEST(HostNode, DirectDereferenceOnHost) {
    // buffer_ptr on node 0 dereferences through the host context installed
    // by offload::run().
    run_lb([] {
        auto buf = allocate<std::int64_t>(0, 4);
        buf[0] = 10;
        buf[3] = 40;
        EXPECT_EQ(std::int64_t(buf[0]), 10);
        EXPECT_EQ(std::int64_t(buf[3]), 40);
        free(buf);
    });
}

TEST(HostNode, SelfOffloadKernelUsesHostBuffer) {
    run_lb([] {
        auto buf = allocate<std::int64_t>(0, 50);
        std::vector<std::int64_t> v(50);
        std::iota(v.begin(), v.end(), 1);
        put(v.data(), buf, v.size()).get();
        // sync to node 0 executes locally with the host memory context.
        const std::int64_t total =
            sync(0, ham::f2f<&tk::sum_buffer>(buf, std::uint64_t{50}));
        EXPECT_EQ(total, 50 * 51 / 2);
        free(buf);
    });
}

TEST(HostNode, CopyHostToTargetAndBack) {
    run_lb([] {
        std::vector<std::int64_t> v{9, 8, 7};
        auto h = allocate<std::int64_t>(0, 3);
        auto t = allocate<std::int64_t>(1, 3);
        put(v.data(), h, 3).get();
        copy(h, t, 3).get();
        std::vector<std::int64_t> back(3);
        get(t, back.data(), 3).get();
        EXPECT_EQ(back, v);
        free(h);
        free(t);
    });
}

TEST(HostNode, DoubleFreeIsIdempotent) {
    // Settlement paths (e.g. target_failed_error cleanup) may free a buffer
    // that was already released; the second free must be a traced no-op, not
    // a crash — the buffer-lifecycle contract in docs/MEMORY.md.
    run_lb([] {
        auto buf = allocate<int>(0, 4);
        free(buf);
        EXPECT_NO_THROW(free(buf));
    });
}

} // namespace
} // namespace ham::offload
