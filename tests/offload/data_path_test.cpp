// Tests of the VE-DMA bulk-data path extension (put/get through the user DMA
// engine with pipelined staging; see options.hpp and DESIGN.md E12).
#include <numeric>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

runtime_options data_path_opts(std::uint64_t chunk = 64 * 1024,
                               std::uint32_t chunks = 4) {
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    opt.vedma_dma_data_path = true;
    opt.vedma_staging_chunk_bytes = chunk;
    opt.vedma_staging_chunks = chunks;
    return opt;
}

void run_dp(const std::function<void()>& body,
            runtime_options opt = data_path_opts()) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(run(plat, opt, body), 0);
}

class DataPathSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DataPathSizes, PutGetRoundTripExactBytes) {
    const std::uint64_t n = GetParam();
    run_dp([n] {
        std::vector<std::uint8_t> src(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            src[i] = std::uint8_t((i * 2654435761u) >> 24);
        }
        auto buf = allocate<std::uint8_t>(1, n);
        put(src.data(), buf, n).get();
        std::vector<std::uint8_t> back(n, 0);
        get(buf, back.data(), n).get();
        EXPECT_EQ(src, back);
        free(buf);
    });
}

// Sizes straddling chunk boundaries (chunk = 64 KiB, window = 4): below one
// chunk, exactly one chunk, mid-window, exactly the window, beyond it, and
// odd lengths.
INSTANTIATE_TEST_SUITE_P(ChunkBoundaries, DataPathSizes,
                         ::testing::Values(1, 7, 4096, 65536, 65537, 131072,
                                           262144, 262145, 1048576, 999999));

TEST(DataPath, InterleavesWithUserOffloads) {
    run_dp([] {
        auto buf = allocate<std::int64_t>(1, 1000);
        std::vector<std::int64_t> v(1000);
        std::iota(v.begin(), v.end(), 1);
        put(v.data(), buf, v.size()).get();
        // An offload between transfers shares the same slot machinery.
        const std::int64_t total =
            sync(1, ham::f2f<&tk::sum_buffer>(buf, std::uint64_t{1000}));
        EXPECT_EQ(total, 1000 * 1001 / 2);
        std::vector<std::int64_t> back(1000);
        get(buf, back.data(), back.size()).get();
        EXPECT_EQ(back, v);
        free(buf);
    });
}

TEST(DataPath, SmallTransfersAvoidVeoBaseCost) {
    // The whole point: a small put through the DMA path must be far cheaper
    // than the ~100 us privileged-DMA base cost of veo_write_mem.
    run_dp([] {
        auto buf = allocate<double>(1, 8);
        double v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        put(v, buf, 8).get(); // warm-up
        const aurora::sim::time_ns t0 = aurora::sim::now();
        put(v, buf, 8).get();
        const double cost = double(aurora::sim::now() - t0);
        EXPECT_LT(cost, 40'000.0); // vs ~100 us through VEO
        free(buf);
    });
}

TEST(DataPath, LargeTransferBandwidthBeatsVeo) {
    auto measure = [](bool data_path) {
        runtime_options opt;
        opt.backend = backend_kind::vedma;
        opt.vedma_dma_data_path = data_path;
        opt.vedma_staging_chunk_bytes = 2 * 1024 * 1024;
        opt.vedma_staging_chunks = 4;
        double ns = 0.0;
        aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
        run(plat, opt, [&] {
            constexpr std::uint64_t n = 64 * 1024 * 1024;
            std::vector<std::uint8_t> src(n, 0x5A);
            auto buf = allocate<std::uint8_t>(1, n);
            const aurora::sim::time_ns t0 = aurora::sim::now();
            put(src.data(), buf, n).get();
            ns = double(aurora::sim::now() - t0);
            free(buf);
        });
        return ns;
    };
    const double veo_ns = measure(false);
    const double dma_ns = measure(true);
    EXPECT_LT(dma_ns, veo_ns);
}

TEST(DataPath, DeterministicTiming) {
    auto once = [] {
        aurora::sim::time_ns end = 0;
        aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
        run(plat, data_path_opts(), [&] {
            std::vector<std::uint8_t> src(300000, 1);
            auto buf = allocate<std::uint8_t>(1, src.size());
            put(src.data(), buf, src.size()).get();
            std::vector<std::uint8_t> back(src.size());
            get(buf, back.data(), back.size()).get();
            free(buf);
            end = aurora::sim::now();
        });
        return end;
    };
    EXPECT_EQ(once(), once());
}

TEST(DataPath, OtherBackendsRejectDataMessages) {
    // Guard: the loopback/VEO backends must refuse data-path messages.
    runtime_options opt;
    opt.backend = backend_kind::loopback;
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    run(plat, opt, [] {
        EXPECT_FALSE(
            runtime::current()->backend_for(1).has_dma_data_path());
    });
}

} // namespace
} // namespace ham::offload
