// Runtime statistics accounting.
#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

TEST(Statistics, CountsMessagesAndResults) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    run(plat, opt, [] {
        runtime& rt = *runtime::current();
        for (int i = 0; i < 5; ++i) {
            sync(1, ham::f2f<&tk::add>(i, 1));
        }
        const auto& s = rt.statistics(1);
        EXPECT_EQ(s.messages_sent, 5u);
        EXPECT_EQ(s.results_received, 5u);
        EXPECT_EQ(s.bytes_put, 0u);
    });
}

TEST(Statistics, CountsBytesMoved) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    run(plat, opt, [] {
        auto buf = allocate<double>(1, 100);
        std::vector<double> v(100, 1.0);
        put(v.data(), buf, 100).get();
        put(v.data(), buf, 50).get();
        get(buf, v.data(), 25).get();
        const auto& s = runtime::current()->statistics(1);
        EXPECT_EQ(s.bytes_put, 150 * sizeof(double));
        EXPECT_EQ(s.bytes_got, 25 * sizeof(double));
        EXPECT_EQ(s.data_chunks, 0u); // data path disabled
        free(buf);
    });
}

TEST(Statistics, CountsDataPathChunks) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    opt.vedma_dma_data_path = true;
    opt.vedma_staging_chunk_bytes = 1024;
    opt.vedma_staging_chunks = 2;
    run(plat, opt, [] {
        auto buf = allocate<std::uint8_t>(1, 5000);
        std::vector<std::uint8_t> v(5000, 7);
        put(v.data(), buf, v.size()).get(); // 5 chunks of <=1024
        const auto& s = runtime::current()->statistics(1);
        EXPECT_EQ(s.data_chunks, 5u);
        EXPECT_EQ(s.bytes_put, 5000u);
        free(buf);
    });
}

TEST(Statistics, PerTargetIsolation) {
    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    opt.targets = {0, 1};
    run(plat, opt, [] {
        sync(1, ham::f2f<&tk::add>(1, 1));
        sync(2, ham::f2f<&tk::add>(2, 2));
        sync(2, ham::f2f<&tk::add>(3, 3));
        runtime& rt = *runtime::current();
        EXPECT_EQ(rt.statistics(1).messages_sent, 1u);
        EXPECT_EQ(rt.statistics(2).messages_sent, 2u);
    });
}

} // namespace
} // namespace ham::offload
