// wait_all: bulk future synchronisation.
#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

void run_dma(const std::function<void()>& body) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    ASSERT_EQ(run(plat, opt, body), 0);
}

TEST(WaitAll, ValuesRemainGettable) {
    run_dma([] {
        std::vector<future<int>> fs;
        for (int i = 0; i < 12; ++i) {
            fs.push_back(async(1, ham::f2f<&tk::add>(i, 7)));
        }
        wait_all(fs);
        for (auto& f : fs) {
            EXPECT_TRUE(f.test()); // all already satisfied
        }
        for (int i = 0; i < 12; ++i) {
            EXPECT_EQ(fs[std::size_t(i)].get(), 7 + i);
        }
    });
}

TEST(WaitAll, VoidFutures) {
    run_dma([] {
        auto buf = allocate<std::int64_t>(1, 8);
        std::vector<future<void>> fs;
        for (int i = 0; i < 5; ++i) {
            fs.push_back(async(1, ham::f2f<&tk::fill_buffer>(
                                      buf, std::uint64_t{8}, std::int64_t{i})));
        }
        wait_all(fs);
        for (auto& f : fs) {
            EXPECT_NO_THROW(f.get());
        }
        free(buf);
    });
}

TEST(WaitAll, FailureDeferredToGet) {
    run_dma([] {
        std::vector<future<int>> fs;
        fs.push_back(async(1, ham::f2f<&tk::add>(1, 1)));
        fs.push_back(async(1, ham::f2f<&tk::failing_kernel>()));
        EXPECT_NO_THROW(wait_all(fs));
        EXPECT_EQ(fs[0].get(), 2);
        EXPECT_THROW((void)fs[1].get(), offload_error);
    });
}

TEST(WaitAll, EmptyVectorIsNoop) {
    run_dma([] {
        std::vector<future<int>> fs;
        EXPECT_NO_THROW(wait_all(fs));
    });
}

} // namespace
} // namespace ham::offload
