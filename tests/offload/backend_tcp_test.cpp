// Tests of the generic TCP/IP backend (paper Fig. 1).
#include <numeric>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

runtime_options tcp_opts() {
    runtime_options opt;
    opt.backend = backend_kind::tcp;
    return opt;
}

void run_tcp(const std::function<void()>& body,
             runtime_options opt = tcp_opts()) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    ASSERT_EQ(run(plat, opt, body), 0);
}

TEST(BackendTcp, SyncOffload) {
    run_tcp([] { EXPECT_EQ(sync(1, ham::f2f<&tk::add>(40, 2)), 42); });
}

TEST(BackendTcp, AsyncSequenceInOrder) {
    run_tcp([] {
        std::vector<future<int>> fs;
        for (int i = 0; i < 12; ++i) {
            fs.push_back(async(1, ham::f2f<&tk::add>(i, 100)));
        }
        for (int i = 0; i < 12; ++i) {
            EXPECT_EQ(fs[std::size_t(i)].get(), 100 + i);
        }
    });
}

TEST(BackendTcp, PutGetRoundTrip) {
    run_tcp([] {
        std::vector<std::int64_t> v(500);
        std::iota(v.begin(), v.end(), -250);
        auto buf = allocate<std::int64_t>(1, v.size());
        put(v.data(), buf, v.size()).get();
        std::vector<std::int64_t> back(v.size());
        get(buf, back.data(), back.size()).get();
        EXPECT_EQ(v, back);
        free(buf);
    });
}

TEST(BackendTcp, OffloadCostIsNetworkBound) {
    // One offload >= one TCP round trip plus the per-message software costs
    // in both directions — tens of microseconds, far above the DMA protocol.
    run_tcp([] {
        sync(1, ham::f2f<&tk::empty_kernel>()); // warm-up
        const aurora::sim::time_ns t0 = aurora::sim::now();
        sync(1, ham::f2f<&tk::empty_kernel>());
        const double cost = double(aurora::sim::now() - t0);
        const aurora::sim::cost_model cm;
        EXPECT_GE(cost, double(2 * cm.tcp_half_rtt_ns));
        EXPECT_LT(cost, 200'000.0);
    });
}

TEST(BackendTcp, LatencyOrderingVsOtherBackends) {
    auto cost = [](backend_kind kind) {
        double c = 0.0;
        aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
        runtime_options opt;
        opt.backend = kind;
        run(plat, opt, [&] {
            sync(1, ham::f2f<&tk::empty_kernel>());
            const aurora::sim::time_ns t0 = aurora::sim::now();
            for (int i = 0; i < 10; ++i) sync(1, ham::f2f<&tk::empty_kernel>());
            c = double(aurora::sim::now() - t0) / 10;
        });
        return c;
    };
    const double lb = cost(backend_kind::loopback);
    const double tcp = cost(backend_kind::tcp);
    const double dma = cost(backend_kind::vedma);
    const double veo = cost(backend_kind::veo);
    // loopback < vedma < tcp < veo: the specialised DMA protocol beats the
    // generic network path; the VEO software stack is the slowest.
    EXPECT_LT(lb, dma);
    EXPECT_LT(dma, tcp);
    EXPECT_LT(tcp, veo);
}

TEST(BackendTcp, DescriptorIdentifiesGenericPeer) {
    run_tcp([] {
        const node_descriptor d = get_node_descriptor(1);
        EXPECT_NE(d.device_type.find("TCP"), std::string::npos);
        EXPECT_EQ(d.ve_id, -1);
    });
}

TEST(BackendTcp, TargetExceptionPropagates) {
    run_tcp([] {
        auto f = async(1, ham::f2f<&tk::failing_kernel>());
        EXPECT_THROW((void)f.get(), offload_error);
    });
}

} // namespace
} // namespace ham::offload
