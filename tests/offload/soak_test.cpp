// Full-system soak: a long randomised scenario mixing every public API
// operation across multiple VEs and both paper backends, verified against
// shadow state. One fixed seed => fully deterministic.
#include <map>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

struct shadow_buffer {
    buffer_ptr<std::int64_t> ptr;
    std::vector<std::int64_t> contents; // host-side truth
};

class Soak : public ::testing::TestWithParam<backend_kind> {};

TEST_P(Soak, RandomisedMixedWorkload) {
    runtime_options opt;
    opt.backend = GetParam();
    opt.targets = {0, 1};
    opt.msg_slots = 4;

    aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
    ASSERT_EQ(run(plat, opt, [] {
        std::mt19937_64 rng(0x50CC);
        std::vector<std::vector<shadow_buffer>> buffers(num_nodes());
        std::vector<std::pair<future<std::int64_t>, std::int64_t>> pending;
        int ops = 0, verified_gets = 0, verified_sums = 0;

        auto rand_node = [&] { return node_t(1 + rng() % (num_nodes() - 1)); };

        for (int step = 0; step < 400; ++step) {
            switch (rng() % 6) {
                case 0: { // allocate + put
                    const node_t n = rand_node();
                    const std::size_t count = 1 + rng() % 300;
                    shadow_buffer sb;
                    sb.ptr = allocate<std::int64_t>(n, count);
                    sb.contents.resize(count);
                    for (auto& v : sb.contents) {
                        // Bounded so the shadow/kernel sums cannot overflow.
                        v = std::int64_t(rng() % 2000000) - 1000000;
                    }
                    put(sb.contents.data(), sb.ptr, count).get();
                    buffers[std::size_t(n)].push_back(std::move(sb));
                    break;
                }
                case 1: { // get + verify
                    const node_t n = rand_node();
                    auto& list = buffers[std::size_t(n)];
                    if (list.empty()) break;
                    const auto& sb = list[rng() % list.size()];
                    std::vector<std::int64_t> back(sb.contents.size());
                    get(sb.ptr, back.data(), back.size()).get();
                    ASSERT_EQ(back, sb.contents) << "step " << step;
                    ++verified_gets;
                    break;
                }
                case 2: { // offload a sum kernel over a live buffer
                    const node_t n = rand_node();
                    auto& list = buffers[std::size_t(n)];
                    if (list.empty()) break;
                    const auto& sb = list[rng() % list.size()];
                    const std::int64_t expected = std::accumulate(
                        sb.contents.begin(), sb.contents.end(), std::int64_t{0});
                    pending.emplace_back(
                        async(n, ham::f2f<&tk::sum_buffer>(
                                     sb.ptr, std::uint64_t(sb.contents.size()))),
                        expected);
                    break;
                }
                case 3: { // collect one pending result
                    if (pending.empty()) break;
                    const std::size_t idx = rng() % pending.size();
                    ASSERT_EQ(pending[idx].first.get(), pending[idx].second)
                        << "step " << step;
                    pending.erase(pending.begin() + std::ptrdiff_t(idx));
                    ++verified_sums;
                    break;
                }
                case 4: { // fill a buffer on the target, update the shadow
                    const node_t n = rand_node();
                    auto& list = buffers[std::size_t(n)];
                    if (list.empty()) break;
                    auto& sb = list[rng() % list.size()];
                    const std::int64_t base = std::int64_t(rng() % 1000);
                    sync(n, ham::f2f<&tk::fill_buffer>(
                                sb.ptr, std::uint64_t(sb.contents.size()), base));
                    for (std::size_t i = 0; i < sb.contents.size(); ++i) {
                        sb.contents[i] = base + std::int64_t(i);
                    }
                    break;
                }
                default: { // free a buffer (collect its pending sums first)
                    const node_t n = rand_node();
                    auto& list = buffers[std::size_t(n)];
                    if (list.empty() || !pending.empty()) break;
                    const std::size_t idx = rng() % list.size();
                    free(list[idx].ptr);
                    list.erase(list.begin() + std::ptrdiff_t(idx));
                    break;
                }
            }
            ++ops;
        }
        for (auto& [f, expected] : pending) {
            ASSERT_EQ(f.get(), expected);
            ++verified_sums;
        }
        for (auto& list : buffers) {
            for (auto& sb : list) {
                free(sb.ptr);
            }
        }
        EXPECT_EQ(ops, 400);
        EXPECT_GT(verified_gets, 20);
        EXPECT_GT(verified_sums, 20);
    }), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, Soak,
                         ::testing::Values(backend_kind::veo,
                                           backend_kind::vedma),
                         [](const auto& param_info) {
                             return param_info.param == backend_kind::veo
                                        ? "veo"
                                        : "vedma";
                         });

} // namespace
} // namespace ham::offload
