// Shared offloadable kernels for the offload-layer tests.
#pragma once

#include <cstdint>

#include "offload/offload.hpp"

namespace ham::offload::testkernels {

inline int add(int a, int b) {
    return a + b;
}

inline std::int64_t sum_buffer(buffer_ptr<std::int64_t> data, std::uint64_t n) {
    std::int64_t total = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        total += data[i];
    }
    return total;
}

inline void fill_buffer(buffer_ptr<std::int64_t> data, std::uint64_t n,
                        std::int64_t value) {
    for (std::uint64_t i = 0; i < n; ++i) {
        data[i] = value + std::int64_t(i);
    }
}

inline double inner_product(buffer_ptr<double> a, buffer_ptr<double> b,
                            std::uint64_t n) {
    double r = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        r += a[i] * b[i];
    }
    return r;
}

inline int failing_kernel() {
    throw std::runtime_error("kernel failure");
}

inline std::uint64_t string_length(ham::migratable<std::string> s) {
    return s.get().size();
}

inline void empty_kernel() {}

} // namespace ham::offload::testkernels
