// Runtime-option validation: misconfigurations fail fast with clear errors.
#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

void expect_run_rejects(runtime_options opt, const char* needle) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    try {
        run(plat, opt, [] {});
        FAIL() << "expected rejection: " << needle;
    } catch (const aurora::check_error& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(OptionsValidation, EmptyTargetsRejected) {
    runtime_options opt;
    opt.targets.clear();
    expect_run_rejects(opt, "targets is empty");
}

TEST(OptionsValidation, ZeroSlotsRejected) {
    runtime_options opt;
    opt.msg_slots = 0;
    expect_run_rejects(opt, "msg_slots");
}

TEST(OptionsValidation, TinyMsgSizeRejected) {
    runtime_options opt;
    opt.msg_size = 64;
    expect_run_rejects(opt, "msg_size");
}

TEST(OptionsValidation, MisalignedMsgSizeRejected) {
    runtime_options opt;
    opt.msg_size = 1001;
    expect_run_rejects(opt, "msg_size");
}

TEST(OptionsValidation, NonexistentVeRejected) {
    runtime_options opt;
    opt.targets = {3}; // test machine has a single VE
    expect_run_rejects(opt, "does not exist");
}

TEST(OptionsValidation, BadSocketRejected) {
    runtime_options opt;
    opt.vh_socket = 5; // test machine has one socket
    expect_run_rejects(opt, "socket");
}

TEST(OptionsValidation, MinimalValidConfigurationWorks) {
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    runtime_options opt;
    opt.msg_slots = 1;
    opt.msg_size = 256;
    EXPECT_EQ(run(plat, opt, [] {
        EXPECT_EQ(sync(1, ham::f2f<&testkernels::add>(1, 2)), 3);
    }), 0);
}

} // namespace
} // namespace ham::offload
