// End-to-end tests of the VE-DMA protocol (paper Sec. IV-B, Fig. 8).
#include <numeric>

#include <cstring>

#include <gtest/gtest.h>

#include "offload/offload.hpp"
#include "tests/offload/test_kernels.hpp"

namespace ham::offload {
namespace {

namespace tk = testkernels;

runtime_options dma_opts() {
    runtime_options opt;
    opt.backend = backend_kind::vedma;
    opt.targets = {0};
    return opt;
}

void run_dma(const std::function<void()>& body,
             runtime_options opt = dma_opts(),
             aurora::sim::platform_config cfg =
                 aurora::sim::platform_config::test_machine()) {
    aurora::sim::platform plat(std::move(cfg));
    ASSERT_EQ(run(plat, opt, body), 0);
}

TEST(BackendVedma, SyncOffload) {
    run_dma([] { EXPECT_EQ(sync(1, ham::f2f<&tk::add>(40, 2)), 42); });
}

TEST(BackendVedma, AsyncOffloadSequence) {
    run_dma([] {
        std::vector<future<int>> fs;
        for (int i = 0; i < 10; ++i) {
            fs.push_back(async(1, ham::f2f<&tk::add>(i, 3 * i)));
        }
        for (int i = 0; i < 10; ++i) {
            EXPECT_EQ(fs[std::size_t(i)].get(), 4 * i);
        }
    });
}

TEST(BackendVedma, EmptyOffloadCostMatchesFig9) {
    // Fig. 9's headline: 6.1 us per empty offload with the DMA protocol.
    run_dma([] {
        sync(1, ham::f2f<&tk::empty_kernel>()); // warm-up
        const aurora::sim::time_ns before = aurora::sim::now();
        constexpr int reps = 50;
        for (int i = 0; i < reps; ++i) {
            sync(1, ham::f2f<&tk::empty_kernel>());
        }
        const double per_offload = double(aurora::sim::now() - before) / reps;
        EXPECT_NEAR(per_offload, 6'100.0, 600.0);
    });
}

TEST(BackendVedma, PutGetStillUseVeo) {
    // "data exchange [is] still performed through the VEO API" (Sec. IV-B):
    // a small put must carry the privileged-DMA base cost, not the ~us DMA
    // protocol cost.
    run_dma([] {
        auto buf = allocate<double>(1, 8);
        double v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        const aurora::sim::time_ns before = aurora::sim::now();
        put(v, buf, 8).get();
        EXPECT_GT(aurora::sim::now() - before, 80'000);
        double back[8] = {};
        get(buf, back, 8).get();
        EXPECT_EQ(std::memcmp(v, back, sizeof(v)), 0);
        free(buf);
    });
}

TEST(BackendVedma, KernelTouchesVeMemory) {
    run_dma([] {
        auto buf = allocate<std::int64_t>(1, 128);
        sync(1,
             ham::f2f<&tk::fill_buffer>(buf, std::uint64_t{128}, std::int64_t{-5}));
        const std::int64_t total =
            sync(1, ham::f2f<&tk::sum_buffer>(buf, std::uint64_t{128}));
        EXPECT_EQ(total, -5 * 128 + 127 * 128 / 2);
        free(buf);
    });
}

TEST(BackendVedma, TargetExceptionPropagates) {
    run_dma([] {
        auto f = async(1, ham::f2f<&tk::failing_kernel>());
        EXPECT_THROW((void)f.get(), offload_error);
    });
}

TEST(BackendVedma, SlotWrapAroundManyMessages) {
    runtime_options opt = dma_opts();
    opt.msg_slots = 3;
    run_dma(
        [] {
            for (int i = 0; i < 20; ++i) {
                EXPECT_EQ(sync(1, ham::f2f<&tk::add>(i, -i)), 0);
            }
        },
        opt);
}

TEST(BackendVedma, ShmSmallResultExtension) {
    runtime_options opt = dma_opts();
    opt.vedma_shm_small_results = true;
    run_dma(
        [] {
            // Functional equivalence with the extension enabled.
            for (int i = 0; i < 5; ++i) {
                EXPECT_EQ(sync(1, ham::f2f<&tk::add>(i, 7)), 7 + i);
            }
        },
        opt);
}

TEST(BackendVedma, ShmSmallResultExtensionIsFasterForEmptyOffloads) {
    // The SHM store replaces the result DMA (~1.25 us) with a few posted
    // word stores — the Sec. V-B "could be exploited" observation.
    auto measure = [](bool use_shm) {
        runtime_options opt;
        opt.backend = backend_kind::vedma;
        opt.vedma_shm_small_results = use_shm;
        double per_offload = 0.0;
        aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
        run(plat, opt, [&] {
            sync(1, ham::f2f<&tk::empty_kernel>());
            const aurora::sim::time_ns before = aurora::sim::now();
            for (int i = 0; i < 20; ++i) {
                sync(1, ham::f2f<&tk::empty_kernel>());
            }
            per_offload = double(aurora::sim::now() - before) / 20;
        });
        return per_offload;
    };
    const double dma_result = measure(false);
    const double shm_result = measure(true);
    EXPECT_LT(shm_result, dma_result);
}

TEST(BackendVedma, SecondSocketAddsUpToOneMicrosecond) {
    // Sec. V-A: offloading from the second CPU adds up to 1 us via UPI.
    auto measure = [](int socket) {
        runtime_options opt;
        opt.backend = backend_kind::vedma;
        opt.vh_socket = socket;
        double per_offload = 0.0;
        aurora::sim::platform plat(aurora::sim::platform_config::a300_8());
        run(plat, opt, [&] {
            sync(1, ham::f2f<&tk::empty_kernel>());
            const aurora::sim::time_ns before = aurora::sim::now();
            for (int i = 0; i < 20; ++i) {
                sync(1, ham::f2f<&tk::empty_kernel>());
            }
            per_offload = double(aurora::sim::now() - before) / 20;
        });
        return per_offload;
    };
    const double local = measure(0);
    const double remote = measure(1);
    EXPECT_GT(remote, local);
    EXPECT_LE(remote - local, 1'000.0);
}

TEST(BackendVedma, MultipleVeTargets) {
    runtime_options opt = dma_opts();
    opt.targets = {0, 1};
    run_dma(
        [] {
            EXPECT_EQ(num_nodes(), 3u);
            auto f1 = async(1, ham::f2f<&tk::add>(1, 10));
            auto f2 = async(2, ham::f2f<&tk::add>(2, 20));
            EXPECT_EQ(f2.get(), 22);
            EXPECT_EQ(f1.get(), 11);
        },
        opt, aurora::sim::platform_config::a300_8());
}

TEST(BackendVedma, DmaProtocolBeatsVeoProtocolBy70x) {
    // Fig. 9: 70.8x between the two HAM-Offload backends.
    auto measure = [](backend_kind kind) {
        runtime_options opt;
        opt.backend = kind;
        double per_offload = 0.0;
        aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
        run(plat, opt, [&] {
            sync(1, ham::f2f<&tk::empty_kernel>());
            const aurora::sim::time_ns before = aurora::sim::now();
            for (int i = 0; i < 20; ++i) {
                sync(1, ham::f2f<&tk::empty_kernel>());
            }
            per_offload = double(aurora::sim::now() - before) / 20;
        });
        return per_offload;
    };
    const double veo_t = measure(backend_kind::veo);
    const double dma_t = measure(backend_kind::vedma);
    EXPECT_NEAR(veo_t / dma_t, 70.8, 7.0);
}

} // namespace
} // namespace ham::offload
