#include "sim/pcie.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace aurora::sim {
namespace {

TEST(PcieTopology, A300SwitchAssignment) {
    pcie_topology topo; // defaults model the A300-8 (Fig. 3)
    EXPECT_EQ(topo.switch_of_ve(0), 0);
    EXPECT_EQ(topo.switch_of_ve(3), 0);
    EXPECT_EQ(topo.switch_of_ve(4), 1);
    EXPECT_EQ(topo.switch_of_ve(7), 1);
}

TEST(PcieTopology, UpiCrossingDetection) {
    pcie_topology topo;
    EXPECT_FALSE(topo.crosses_upi(0, 0)); // socket 0, VE 0: local
    EXPECT_FALSE(topo.crosses_upi(1, 4)); // socket 1, VE 4: local
    EXPECT_TRUE(topo.crosses_upi(1, 0));  // socket 1 to switch 0: UPI
    EXPECT_TRUE(topo.crosses_upi(0, 7));
}

TEST(PcieTopology, RoundTripMatchesPaper) {
    // The paper quotes 1.2 us PCIe round trip for the local VE (Sec. V-A).
    pcie_topology topo;
    cost_model cm;
    EXPECT_EQ(topo.round_trip_latency(cm, 0, 0), 1200);
}

TEST(PcieTopology, UpiAddsAtMostOneMicrosecond) {
    // "Performing the offload from the second CPU … adds up to 1 us" (V-A).
    pcie_topology topo;
    cost_model cm;
    const auto local = topo.round_trip_latency(cm, 0, 0);
    const auto remote = topo.round_trip_latency(cm, 1, 0);
    EXPECT_GT(remote, local);
    EXPECT_LE(remote - local, 1000);
}

TEST(PcieTopology, InvalidIndicesThrow) {
    pcie_topology topo;
    EXPECT_THROW((void)topo.switch_of_ve(8), aurora::check_error);
    EXPECT_THROW((void)topo.switch_of_ve(-1), aurora::check_error);
    EXPECT_THROW((void)topo.crosses_upi(2, 0), aurora::check_error);
}

} // namespace
} // namespace aurora::sim
