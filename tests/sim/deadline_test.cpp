// Virtual-deadline guard: catches runaway polling loops deterministically.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/event.hpp"

namespace aurora::sim {
namespace {

using namespace aurora::sim::literals;

TEST(Deadline, RunawayLoopAborts) {
    simulation s;
    s.set_virtual_deadline(1'000'000); // 1 ms of virtual time
    s.spawn("spinner", [] {
        for (;;) {
            advance(100_ns); // would spin forever
        }
    });
    try {
        s.run();
        FAIL() << "expected deadline abort";
    } catch (const simulation_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("virtual deadline"), std::string::npos);
        EXPECT_NE(what.find("spinner"), std::string::npos);
    }
}

TEST(Deadline, WellBehavedRunUnaffected) {
    simulation s;
    s.set_virtual_deadline(1'000'000);
    time_ns end = 0;
    s.spawn("p", [&] {
        advance(999'999);
        end = now();
    });
    EXPECT_NO_THROW(s.run());
    EXPECT_EQ(end, 999'999);
}

TEST(Deadline, ExactDeadlineAllowed) {
    simulation s;
    s.set_virtual_deadline(500);
    s.spawn("p", [] { advance(500); });
    EXPECT_NO_THROW(s.run());
}

TEST(Deadline, ZeroDisablesGuard) {
    simulation s;
    s.set_virtual_deadline(0);
    s.spawn("p", [] { advance(10'000'000'000LL); }); // 10 s virtual
    EXPECT_NO_THROW(s.run());
    EXPECT_EQ(s.now(), 10'000'000'000LL);
}

TEST(Deadline, MultiProcessAbortIsClean) {
    simulation s;
    s.set_virtual_deadline(10'000);
    event ev(s);
    s.spawn("waiter", [&] { ev.wait(); });
    s.spawn("spinner", [] {
        for (;;) {
            advance(1_us);
        }
    });
    EXPECT_THROW(s.run(), simulation_error);
}

} // namespace
} // namespace aurora::sim
