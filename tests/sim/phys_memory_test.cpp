#include "sim/phys_memory.hpp"

#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace aurora::sim {
namespace {

TEST(PhysMemory, FreshMemoryReadsZero) {
    phys_memory m("test", 1 * MiB);
    std::vector<std::uint8_t> buf(4096, 0xAB);
    m.read(0, buf.data(), buf.size());
    for (auto b : buf) EXPECT_EQ(b, 0);
    EXPECT_EQ(m.resident_chunks(), 0u);
}

TEST(PhysMemory, WriteReadRoundTrip) {
    phys_memory m("test", 1 * MiB);
    std::vector<std::uint8_t> src(1000);
    std::iota(src.begin(), src.end(), 0);
    m.write(123, src.data(), src.size());
    std::vector<std::uint8_t> dst(1000, 0);
    m.read(123, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(PhysMemory, CrossChunkAccess) {
    phys_memory m("test", 1 * MiB);
    const std::uint64_t addr = phys_memory::chunk_size - 17;
    std::vector<std::uint8_t> src(64, 0x5A);
    m.write(addr, src.data(), src.size());
    std::vector<std::uint8_t> dst(64, 0);
    m.read(addr, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
    EXPECT_EQ(m.resident_chunks(), 2u);
}

TEST(PhysMemory, SparseBackingOnlyTouchedChunks) {
    phys_memory m("test", 48 * GiB); // the full VE HBM2 without 48 GiB of RAM
    const std::uint64_t far_addr = 47 * GiB;
    m.store_u64(far_addr, 0xDEADBEEF);
    EXPECT_EQ(m.load_u64(far_addr), 0xDEADBEEFu);
    EXPECT_EQ(m.resident_chunks(), 1u);
}

TEST(PhysMemory, U64RoundTrip) {
    phys_memory m("test", 4096);
    m.store_u64(8, 0x0123456789ABCDEFull);
    EXPECT_EQ(m.load_u64(8), 0x0123456789ABCDEFull);
    EXPECT_EQ(m.load_u64(16), 0u);
}

TEST(PhysMemory, OutOfBoundsThrows) {
    phys_memory m("test", 4096);
    std::uint8_t b = 0;
    EXPECT_THROW(m.read(4096, &b, 1), check_error);
    EXPECT_THROW(m.write(4095, &b, 2), check_error);
    EXPECT_THROW((void)m.load_u64(4089), check_error);
}

TEST(PhysMemory, BoundaryAccessOk) {
    phys_memory m("test", 4096);
    std::uint8_t b = 7;
    EXPECT_NO_THROW(m.write(4095, &b, 1));
    EXPECT_NO_THROW(m.read(0, &b, 0)); // zero-length read anywhere valid
}

TEST(PhysMemory, FillZeroClearsWrittenData) {
    phys_memory m("test", 1 * MiB);
    std::vector<std::uint8_t> src(256, 0xFF);
    m.write(100, src.data(), src.size());
    m.fill_zero(100, 256);
    std::vector<std::uint8_t> dst(256, 1);
    m.read(100, dst.data(), dst.size());
    for (auto b : dst) EXPECT_EQ(b, 0);
}

TEST(PhysMemory, FillZeroOnUntouchedIsNoop) {
    phys_memory m("test", 1 * MiB);
    m.fill_zero(0, 1 * MiB);
    EXPECT_EQ(m.resident_chunks(), 0u);
}

TEST(PhysMemory, LargeTransfer) {
    phys_memory m("test", 512 * MiB);
    std::vector<std::uint8_t> src(8 * MiB);
    for (std::size_t i = 0; i < src.size(); ++i) {
        src[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
    }
    m.write(3 * MiB + 5, src.data(), src.size());
    std::vector<std::uint8_t> dst(src.size());
    m.read(3 * MiB + 5, dst.data(), dst.size());
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(PhysMemory, ZeroSizeConstructionThrows) {
    EXPECT_THROW(phys_memory("bad", 0), check_error);
}

} // namespace
} // namespace aurora::sim
