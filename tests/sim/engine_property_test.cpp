// Property/stress tests of the DES engine: determinism, causality, and
// liveness under randomised process graphs.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/event.hpp"

namespace aurora::sim {
namespace {

using namespace aurora::sim::literals;

struct run_log {
    std::vector<std::tuple<int, int, time_ns>> entries; // (proc, step, time)
    bool operator==(const run_log&) const = default;
};

/// A randomised mesh of processes advancing and signalling ring events.
run_log random_mesh_run(unsigned seed, int nprocs, int steps) {
    run_log log;
    simulation s;
    std::vector<std::unique_ptr<event>> ring;
    ring.reserve(std::size_t(nprocs));
    for (int i = 0; i < nprocs; ++i) {
        ring.push_back(std::make_unique<event>(s));
    }
    for (int p = 0; p < nprocs; ++p) {
        s.spawn("p" + std::to_string(p), [&, p, seed] {
            std::mt19937 rng(seed + unsigned(p) * 977u);
            for (int step = 0; step < steps; ++step) {
                advance(duration_ns(rng() % 1000));
                log.entries.emplace_back(p, step, now());
                // Occasionally signal this process's ring event; the next
                // process occasionally waits on ours.
                if (rng() % 4 == 0) {
                    ring[std::size_t(p)]->set();
                }
                if (rng() % 8 == 0) {
                    event& prev =
                        *ring[std::size_t((p + nprocs - 1) % nprocs)];
                    if (prev.is_set()) {
                        prev.wait(); // non-blocking (already set)
                        prev.reset();
                    }
                }
            }
            ring[std::size_t(p)]->set(); // release any tail waiter
        });
    }
    s.run();
    return log;
}

TEST(EngineProperty, IdenticalSeedsProduceIdenticalRuns) {
    for (unsigned seed : {1u, 42u, 20260704u}) {
        EXPECT_EQ(random_mesh_run(seed, 6, 50), random_mesh_run(seed, 6, 50))
            << "seed " << seed;
    }
}

TEST(EngineProperty, DifferentSeedsDiffer) {
    EXPECT_NE(random_mesh_run(1, 6, 50), random_mesh_run(2, 6, 50));
}

TEST(EngineProperty, GlobalObservationOrderIsCausal) {
    const run_log log = random_mesh_run(7, 8, 100);
    // Entries were appended in execution order; global time must never
    // decrease across them (the scheduler always runs the minimum clock).
    for (std::size_t i = 1; i < log.entries.size(); ++i) {
        EXPECT_LE(std::get<2>(log.entries[i - 1]), std::get<2>(log.entries[i]));
    }
    // Per-process step order and count must be exact.
    std::vector<int> next_step(8, 0);
    for (const auto& [p, step, t] : log.entries) {
        EXPECT_EQ(step, next_step[std::size_t(p)]++);
    }
    for (int c : next_step) EXPECT_EQ(c, 100);
}

TEST(EngineProperty, ManyProcessesComplete) {
    simulation s;
    int done = 0;
    for (int i = 0; i < 50; ++i) {
        s.spawn("w" + std::to_string(i), [&, i] {
            for (int k = 0; k < 20; ++k) {
                advance(duration_ns((i * 13 + k * 7) % 97 + 1));
            }
            ++done;
        });
    }
    s.run();
    EXPECT_EQ(done, 50);
    EXPECT_EQ(s.stats().processes_spawned, 50u);
}

TEST(EngineProperty, SpawnCascade) {
    // Each process spawns the next; depth 30.
    simulation s;
    int reached = 0;
    std::function<void(int)> chain = [&](int depth) {
        ++reached;
        advance(10_ns);
        if (depth < 30) {
            s.spawn("c" + std::to_string(depth), [&, depth] { chain(depth + 1); });
            yield();
        }
    };
    s.spawn("c0", [&] { chain(1); });
    s.run();
    EXPECT_EQ(reached, 30);
}

TEST(EngineProperty, ProducerConsumerChainPreservesFifoAndTime) {
    // queue chain: p0 -> q1 -> p1 -> q2 -> p2; timestamps must be causal.
    simulation s;
    sim_queue<std::pair<int, time_ns>> q1(s), q2(s);
    std::vector<std::pair<int, time_ns>> received;
    s.spawn("p0", [&] {
        for (int i = 0; i < 25; ++i) {
            advance(duration_ns(17 + i % 5));
            q1.push({i, now()});
        }
    });
    s.spawn("p1", [&] {
        for (int i = 0; i < 25; ++i) {
            auto v = q1.pop();
            advance(3_ns);
            q2.push(v);
        }
    });
    s.spawn("p2", [&] {
        for (int i = 0; i < 25; ++i) {
            auto [idx, sent_at] = q2.pop();
            EXPECT_EQ(idx, i);            // FIFO end to end
            EXPECT_GE(now(), sent_at + 3); // causality through the chain
            received.emplace_back(idx, now());
        }
    });
    s.run();
    EXPECT_EQ(received.size(), 25u);
}

} // namespace
} // namespace aurora::sim
