#include "sim/vh_memory.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace aurora::sim {
namespace {

TEST(VhPageRegistry, DefaultIsSmallPages) {
    vh_page_registry reg;
    int x = 0;
    EXPECT_EQ(reg.lookup(&x), page_size::small_4k);
}

TEST(VhPageRegistry, RegisteredRangeFound) {
    vh_page_registry reg;
    std::vector<std::byte> buf(4096);
    reg.register_range(buf.data(), buf.size(), page_size::huge_2m);
    EXPECT_EQ(reg.lookup(buf.data()), page_size::huge_2m);
    EXPECT_EQ(reg.lookup(buf.data() + 100), page_size::huge_2m);
    EXPECT_EQ(reg.lookup(buf.data() + 4095), page_size::huge_2m);
    EXPECT_EQ(reg.lookup(buf.data() + 4096), page_size::small_4k);
}

TEST(VhPageRegistry, UnregisterRestoresDefault) {
    vh_page_registry reg;
    std::vector<std::byte> buf(64);
    reg.register_range(buf.data(), buf.size(), page_size::huge_64m);
    reg.unregister_range(buf.data());
    EXPECT_EQ(reg.lookup(buf.data()), page_size::small_4k);
    EXPECT_THROW(reg.unregister_range(buf.data()), aurora::check_error);
}

TEST(VhPageRegistry, OverlapRejected) {
    vh_page_registry reg;
    std::vector<std::byte> buf(256);
    reg.register_range(buf.data(), 128, page_size::huge_2m);
    EXPECT_THROW(reg.register_range(buf.data() + 64, 64, page_size::huge_2m),
                 aurora::check_error);
}

TEST(VhPageRegistry, AdjacentRangesOk) {
    vh_page_registry reg;
    std::vector<std::byte> buf(256);
    reg.register_range(buf.data(), 128, page_size::huge_2m);
    EXPECT_NO_THROW(reg.register_range(buf.data() + 128, 128, page_size::small_4k));
    EXPECT_EQ(reg.lookup(buf.data() + 127), page_size::huge_2m);
    EXPECT_EQ(reg.lookup(buf.data() + 128), page_size::small_4k);
    EXPECT_EQ(reg.registered_count(), 2u);
}

TEST(VhPageRegistry, NullPointerRejected) {
    vh_page_registry reg;
    EXPECT_THROW(reg.register_range(nullptr, 64, page_size::huge_2m),
                 aurora::check_error);
}

TEST(VhAllocation, RegistersAndUnregistersItself) {
    vh_page_registry reg;
    {
        vh_allocation a(reg, 1024, page_size::huge_2m);
        EXPECT_EQ(reg.lookup(a.data()), page_size::huge_2m);
        EXPECT_EQ(a.size(), 1024u);
        EXPECT_EQ(a.pages(), page_size::huge_2m);
        EXPECT_EQ(reg.registered_count(), 1u);
        // Memory is zero-initialised.
        for (std::uint64_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(std::to_integer<int>(a.data()[i]), 0);
        }
    }
    EXPECT_EQ(reg.registered_count(), 0u);
}

} // namespace
} // namespace aurora::sim
