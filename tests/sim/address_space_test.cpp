#include "sim/address_space.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace aurora::sim {
namespace {

TEST(AddressSpace, TranslateWithinMapping) {
    address_space as;
    as.map({.vaddr = 0x1000, .paddr = 0x80000, .length = 0x2000,
            .pages = page_size::ve_64k});
    EXPECT_EQ(as.translate(0x1000).value(), 0x80000u);
    EXPECT_EQ(as.translate(0x1FFF).value(), 0x80FFFu);
    EXPECT_EQ(as.translate(0x2FFF).value(), 0x81FFFu);
}

TEST(AddressSpace, UnmappedReturnsNullopt) {
    address_space as;
    as.map({.vaddr = 0x1000, .paddr = 0, .length = 0x1000,
            .pages = page_size::ve_64k});
    EXPECT_FALSE(as.translate(0x0FFF).has_value());
    EXPECT_FALSE(as.translate(0x2000).has_value());
}

TEST(AddressSpace, TranslateRangeChecksBounds) {
    address_space as;
    as.map({.vaddr = 0x1000, .paddr = 0x5000, .length = 0x100,
            .pages = page_size::ve_64k});
    EXPECT_EQ(as.translate_range(0x1000, 0x100), 0x5000u);
    EXPECT_THROW((void)as.translate_range(0x1000, 0x101), aurora::check_error);
    EXPECT_THROW((void)as.translate_range(0x0, 1), aurora::check_error);
}

TEST(AddressSpace, OverlapRejected) {
    address_space as;
    as.map({.vaddr = 0x1000, .paddr = 0, .length = 0x1000,
            .pages = page_size::ve_64k});
    EXPECT_THROW(as.map({.vaddr = 0x1800, .paddr = 0x9000, .length = 0x100,
                         .pages = page_size::ve_64k}),
                 aurora::check_error);
    EXPECT_THROW(as.map({.vaddr = 0x0800, .paddr = 0x9000, .length = 0x900,
                         .pages = page_size::ve_64k}),
                 aurora::check_error);
}

TEST(AddressSpace, AdjacentMappingsAllowed) {
    address_space as;
    as.map({.vaddr = 0x1000, .paddr = 0, .length = 0x1000,
            .pages = page_size::ve_64k});
    EXPECT_NO_THROW(as.map({.vaddr = 0x2000, .paddr = 0x10000, .length = 0x1000,
                            .pages = page_size::ve_64k}));
    EXPECT_EQ(as.mapping_count(), 2u);
}

TEST(AddressSpace, UnmapRemovesAndReturns) {
    address_space as;
    as.map({.vaddr = 0x4000, .paddr = 0x100, .length = 0x40,
            .pages = page_size::huge_2m});
    const vm_mapping m = as.unmap(0x4000);
    EXPECT_EQ(m.paddr, 0x100u);
    EXPECT_EQ(m.pages, page_size::huge_2m);
    EXPECT_FALSE(as.translate(0x4000).has_value());
    EXPECT_THROW((void)as.unmap(0x4000), aurora::check_error);
}

TEST(AddressSpace, FindReturnsMapping) {
    address_space as;
    as.map({.vaddr = 0x1000, .paddr = 0x0, .length = 0x1000,
            .pages = page_size::huge_2m});
    const vm_mapping* m = as.find(0x1800);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->vaddr, 0x1000u);
    EXPECT_EQ(as.find(0x3000), nullptr);
}

TEST(MemoryView, ReadWriteThroughTranslation) {
    phys_memory mem("ve", 1 * MiB);
    address_space as;
    as.map({.vaddr = 0x600000000000, .paddr = 0x1000, .length = 0x1000,
            .pages = page_size::ve_64k});
    memory_view view(as, mem);
    const std::uint64_t magic = 0xFEEDFACE;
    view.store_u64(0x600000000008, magic);
    EXPECT_EQ(view.load_u64(0x600000000008), magic);
    // Verify it landed at the right physical address.
    EXPECT_EQ(mem.load_u64(0x1008), magic);
}

TEST(MemoryView, FaultOnUnmapped) {
    phys_memory mem("ve", 1 * MiB);
    address_space as;
    memory_view view(as, mem);
    EXPECT_THROW((void)view.load_u64(0x1234), aurora::check_error);
}

TEST(AddressSpace, ZeroLengthMappingRejected) {
    address_space as;
    EXPECT_THROW(as.map({.vaddr = 0, .paddr = 0, .length = 0,
                         .pages = page_size::ve_64k}),
                 aurora::check_error);
}

} // namespace
} // namespace aurora::sim
