#include "sim/range_allocator.hpp"

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace aurora::sim {
namespace {

TEST(RangeAllocator, SimpleAllocate) {
    range_allocator a(0, 1024);
    auto r = a.allocate(128, 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 0u);
    EXPECT_EQ(a.bytes_used(), 128u);
    EXPECT_EQ(a.bytes_free(), 1024u - 128u);
}

TEST(RangeAllocator, NonZeroBase) {
    range_allocator a(0x1000, 1024);
    auto r = a.allocate(64, 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 0x1000u);
}

TEST(RangeAllocator, AlignmentRespected) {
    range_allocator a(0, 1 * MiB);
    (void)a.allocate(100, 1);
    auto r = a.allocate(256, 4096);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r % 4096, 0u);
}

TEST(RangeAllocator, ExhaustionReturnsNullopt) {
    range_allocator a(0, 256);
    EXPECT_TRUE(a.allocate(256, 1).has_value());
    EXPECT_FALSE(a.allocate(1, 1).has_value());
}

TEST(RangeAllocator, TooLargeReturnsNullopt) {
    range_allocator a(0, 256);
    EXPECT_FALSE(a.allocate(257, 1).has_value());
}

TEST(RangeAllocator, ZeroSizeThrows) {
    range_allocator a(0, 256);
    EXPECT_THROW((void)a.allocate(0, 1), check_error);
}

TEST(RangeAllocator, NonPow2AlignmentThrows) {
    range_allocator a(0, 256);
    EXPECT_THROW((void)a.allocate(8, 3), check_error);
}

TEST(RangeAllocator, FreeAndReuse) {
    range_allocator a(0, 256);
    auto r1 = a.allocate(256, 1);
    ASSERT_TRUE(r1.has_value());
    a.free(*r1);
    EXPECT_EQ(a.bytes_free(), 256u);
    auto r2 = a.allocate(256, 1);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(*r2, *r1);
}

TEST(RangeAllocator, DoubleFreeThrows) {
    range_allocator a(0, 256);
    auto r = a.allocate(16, 1);
    a.free(*r);
    EXPECT_THROW(a.free(*r), check_error);
}

TEST(RangeAllocator, FreeUnknownThrows) {
    range_allocator a(0, 256);
    EXPECT_THROW(a.free(0x42), check_error);
}

TEST(RangeAllocator, CoalescingMergesNeighbours) {
    range_allocator a(0, 300);
    auto r1 = a.allocate(100, 1);
    auto r2 = a.allocate(100, 1);
    auto r3 = a.allocate(100, 1);
    ASSERT_TRUE(r1 && r2 && r3);
    a.free(*r1);
    a.free(*r3);
    EXPECT_EQ(a.free_range_count(), 2u);
    a.free(*r2); // bridges both free neighbours
    EXPECT_EQ(a.free_range_count(), 1u);
    // After full coalescing a max-size allocation succeeds again.
    EXPECT_TRUE(a.allocate(300, 1).has_value());
}

TEST(RangeAllocator, IsAllocatedAndSize) {
    range_allocator a(0, 256);
    auto r = a.allocate(32, 1);
    EXPECT_TRUE(a.is_allocated(*r));
    EXPECT_EQ(a.allocation_size(*r), 32u);
    EXPECT_FALSE(a.is_allocated(*r + 1));
    EXPECT_EQ(a.allocation_size(*r + 1), 0u);
}

TEST(RangeAllocator, AlignmentPaddingIsReusable) {
    range_allocator a(0, 1024);
    (void)a.allocate(10, 1);           // [0, 10)
    auto big = a.allocate(512, 256);   // aligned to 256
    ASSERT_TRUE(big.has_value());
    EXPECT_EQ(*big, 256u);
    // The padding gap [10, 256) must still be allocatable.
    auto pad = a.allocate(200, 1);
    ASSERT_TRUE(pad.has_value());
    EXPECT_EQ(*pad, 10u);
}

TEST(RangeAllocator, RandomStressNoOverlapNoLeak) {
    std::mt19937 rng(12345);
    range_allocator a(0, 1 * MiB);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> live; // start,size
    for (int iter = 0; iter < 2000; ++iter) {
        const bool do_alloc = live.empty() || (rng() % 3) != 0;
        if (do_alloc) {
            const std::uint64_t size = 1 + rng() % 4096;
            const std::uint64_t align = 1ULL << (rng() % 8);
            if (auto r = a.allocate(size, align)) {
                // Overlap check against all live allocations.
                for (const auto& [s2, l2] : live) {
                    EXPECT_TRUE(*r + size <= s2 || s2 + l2 <= *r)
                        << "overlap at iter " << iter;
                }
                EXPECT_EQ(*r % align, 0u);
                live.emplace_back(*r, size);
            }
        } else {
            const std::size_t idx = rng() % live.size();
            a.free(live[idx].first);
            live.erase(live.begin() + std::ptrdiff_t(idx));
        }
    }
    for (const auto& [s2, l2] : live) {
        (void)l2;
        a.free(s2);
    }
    EXPECT_EQ(a.bytes_free(), 1 * MiB);
    EXPECT_EQ(a.free_range_count(), 1u);
}

} // namespace
} // namespace aurora::sim
