// Property test: phys_memory against a shadow byte-map model under random
// operations (arbitrary offsets, sizes, chunk-straddling accesses).
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/phys_memory.hpp"
#include "util/units.hpp"

namespace aurora::sim {
namespace {

TEST(PhysMemoryProperty, MatchesShadowModelUnderRandomOps) {
    std::mt19937_64 rng(0xA300);
    constexpr std::uint64_t size = 2 * MiB;
    phys_memory mem("prop", size);
    std::map<std::uint64_t, std::uint8_t> shadow; // absent = 0

    for (int op = 0; op < 3000; ++op) {
        const std::uint64_t addr = rng() % size;
        const std::uint64_t max_len = std::min<std::uint64_t>(size - addr, 700);
        const std::uint64_t len = max_len == 0 ? 0 : rng() % (max_len + 1);
        if (rng() % 2 == 0) {
            // write
            std::vector<std::uint8_t> buf(len);
            for (auto& b : buf) {
                b = std::uint8_t(rng());
            }
            mem.write(addr, buf.data(), len);
            for (std::uint64_t i = 0; i < len; ++i) {
                shadow[addr + i] = buf[i];
            }
        } else {
            // read & compare against the shadow
            std::vector<std::uint8_t> buf(len, 0xCC);
            mem.read(addr, buf.data(), len);
            for (std::uint64_t i = 0; i < len; ++i) {
                const auto it = shadow.find(addr + i);
                const std::uint8_t want = it == shadow.end() ? 0 : it->second;
                ASSERT_EQ(buf[i], want)
                    << "op " << op << " addr " << addr + i;
            }
        }
    }
}

TEST(PhysMemoryProperty, FillZeroMatchesShadow) {
    std::mt19937_64 rng(0xBEE5);
    constexpr std::uint64_t size = 512 * KiB;
    phys_memory mem("prop2", size);
    std::vector<std::uint8_t> shadow(size, 0);

    for (int op = 0; op < 500; ++op) {
        const std::uint64_t addr = rng() % size;
        const std::uint64_t len = rng() % std::min<std::uint64_t>(size - addr + 1,
                                                                  64 * KiB);
        switch (rng() % 3) {
            case 0: {
                std::vector<std::uint8_t> buf(len, std::uint8_t(op));
                mem.write(addr, buf.data(), len);
                std::fill_n(shadow.begin() + long(addr), len, std::uint8_t(op));
                break;
            }
            case 1:
                mem.fill_zero(addr, len);
                std::fill_n(shadow.begin() + long(addr), len, 0);
                break;
            default: {
                std::vector<std::uint8_t> buf(len);
                mem.read(addr, buf.data(), len);
                ASSERT_TRUE(std::equal(buf.begin(), buf.end(),
                                       shadow.begin() + long(addr)))
                    << "op " << op;
                break;
            }
        }
    }
}

TEST(PhysMemoryProperty, ResidencyNeverExceedsTouchedBytes) {
    phys_memory mem("prop3", 1 * GiB);
    std::mt19937_64 rng(99);
    std::uint64_t writes = 0;
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t addr = rng() % (1 * GiB - 8);
        mem.store_u64(addr, rng());
        writes += 8;
    }
    // Each 8-byte write touches at most two 64 KiB chunks.
    EXPECT_LE(mem.resident_chunks(), 2 * 200u);
    EXPECT_GE(mem.resident_chunks(), 1u);
    (void)writes;
}

} // namespace
} // namespace aurora::sim
