#include "sim/platform.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace aurora::sim {
namespace {

TEST(Platform, A300ConfigMatchesTable1And3) {
    const auto cfg = platform_config::a300_8();
    EXPECT_EQ(cfg.topology.num_ve, 8);
    EXPECT_EQ(cfg.topology.num_sockets, 2);
    EXPECT_EQ(cfg.ve_memory_bytes, 48 * GiB);
    EXPECT_EQ(cfg.ve_cores, 8);
    EXPECT_EQ(cfg.dma_mode, dma_manager_mode::improved_4dma);
}

TEST(Platform, ConstructsAllVes) {
    platform p(platform_config::a300_8());
    EXPECT_EQ(p.num_ve(), 8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(p.ve(i).id(), i);
        EXPECT_EQ(p.ve(i).hbm().size(), 48 * GiB);
        EXPECT_EQ(p.ve(i).cores(), 8);
    }
}

TEST(Platform, VeIndexOutOfRangeThrows) {
    platform p(platform_config::test_machine());
    EXPECT_THROW((void)p.ve(1), aurora::check_error);
    EXPECT_THROW((void)p.ve(-1), aurora::check_error);
}

TEST(Platform, TestMachineIsSmall) {
    platform p(platform_config::test_machine());
    EXPECT_EQ(p.num_ve(), 1);
    EXPECT_EQ(p.ve(0).hbm().size(), 1 * GiB);
}

TEST(Platform, DescriptionMentionsKeyFacts) {
    platform p(platform_config::a300_8());
    const std::string d = p.description();
    EXPECT_NE(d.find("SX-Aurora"), std::string::npos);
    EXPECT_NE(d.find("8x NEC VE Type 10B"), std::string::npos);
    EXPECT_NE(d.find("48 GiB"), std::string::npos);
    EXPECT_NE(d.find("4dma"), std::string::npos);
}

TEST(Platform, VeMemoriesAreIndependent) {
    platform p(platform_config::a300_8());
    p.ve(0).hbm().store_u64(0x100, 42);
    EXPECT_EQ(p.ve(1).hbm().load_u64(0x100), 0u);
    EXPECT_EQ(p.ve(0).hbm().load_u64(0x100), 42u);
}

TEST(Platform, SimulationUsable) {
    platform p(platform_config::test_machine());
    int ran = 0;
    p.sim().spawn("vh", [&] { ++ran; });
    p.sim().run();
    EXPECT_EQ(ran, 1);
}

} // namespace
} // namespace aurora::sim
