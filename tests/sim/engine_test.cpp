#include "sim/engine.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace aurora::sim {
namespace {

using namespace aurora::sim::literals;

TEST(Engine, EmptySimulationCompletes) {
    simulation s;
    EXPECT_NO_THROW(s.run());
    EXPECT_EQ(s.now(), 0);
}

TEST(Engine, SingleProcessAdvancesClock) {
    simulation s;
    time_ns seen = -1;
    s.spawn("p", [&] {
        advance(100_ns);
        advance(1_us);
        seen = now();
    });
    s.run();
    EXPECT_EQ(seen, 1100);
    EXPECT_EQ(s.now(), 1100);
}

TEST(Engine, RunTwiceIsAnError) {
    simulation s;
    s.spawn("p", [] {});
    s.run();
    EXPECT_THROW(s.run(), check_error);
}

TEST(Engine, NegativeAdvanceRejected) {
    simulation s;
    s.spawn("p", [] { advance(-1); });
    EXPECT_THROW(s.run(), check_error);
}

TEST(Engine, ProcessesInterleaveByTime) {
    simulation s;
    std::vector<int> order;
    s.spawn("a", [&] {
        order.push_back(1); // t=0
        advance(100_ns);
        order.push_back(3); // t=100
        advance(200_ns);
        order.push_back(5); // t=300
    });
    s.spawn("b", [&] {
        order.push_back(2); // t=0 (after a, spawn order breaks the tie)
        advance(150_ns);
        order.push_back(4); // t=150
        advance(200_ns);
        order.push_back(6); // t=350
    });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Engine, TieBrokenByReadyOrder) {
    simulation s;
    std::vector<char> order;
    s.spawn("a", [&] {
        advance(10_ns);
        order.push_back('a');
    });
    s.spawn("b", [&] {
        advance(10_ns);
        order.push_back('b');
    });
    s.run();
    // 'a' advanced first, so it became ready first and wins the tie.
    EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
}

TEST(Engine, SleepUntilAbsoluteTime) {
    simulation s;
    s.spawn("p", [&] {
        sleep_until(500);
        EXPECT_EQ(now(), 500);
        sleep_until(100); // in the past: no-op
        EXPECT_EQ(now(), 500);
    });
    s.run();
}

TEST(Engine, NowOutsideSimulationThrows) {
    EXPECT_FALSE(in_simulation());
    EXPECT_THROW((void)now(), check_error);
    EXPECT_THROW(advance(1), check_error);
}

TEST(Engine, InSimulationInsideProcess) {
    simulation s;
    bool inside = false;
    s.spawn("p", [&] { inside = in_simulation(); });
    s.run();
    EXPECT_TRUE(inside);
}

TEST(Engine, SelfIdentity) {
    simulation s;
    std::string name;
    std::uint32_t id = 99;
    s.spawn("alpha", [&] {
        name = self().name();
        id = self().id();
    });
    s.run();
    EXPECT_EQ(name, "alpha");
    EXPECT_EQ(id, 0u);
}

TEST(Engine, ExceptionInProcessPropagatesToRun) {
    simulation s;
    s.spawn("boom", [] { throw std::runtime_error("kaboom"); });
    try {
        s.run();
        FAIL() << "run() should rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "kaboom");
    }
}

TEST(Engine, ExceptionAbortsOtherProcesses) {
    simulation s;
    bool other_finished_normally = false;
    s.spawn("boom", [] {
        advance(10_ns);
        throw std::runtime_error("kaboom");
    });
    s.spawn("victim", [&] {
        advance(1_s); // would run to 1s if not aborted
        other_finished_normally = true;
    });
    EXPECT_THROW(s.run(), std::runtime_error);
    EXPECT_FALSE(other_finished_normally);
}

TEST(Engine, DeadlockDetected) {
    simulation s;
    // One process joins another that never finishes because it joins back.
    // Simplest deadlock: a process joins a process that joins it.
    process* pa = nullptr;
    process* pb = nullptr;
    pa = &s.spawn("a", [&] { join(*pb); });
    pb = &s.spawn("b", [&] { join(*pa); });
    try {
        s.run();
        FAIL() << "expected deadlock";
    } catch (const simulation_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos);
        EXPECT_NE(what.find("a"), std::string::npos);
        EXPECT_NE(what.find("blocked"), std::string::npos);
    }
}

TEST(Engine, JoinWaitsForChildAndCarriesTime) {
    simulation s;
    s.spawn("parent", [&] {
        process& child = s.spawn("child", [] { advance(500_ns); });
        advance(10_ns);
        join(child);
        EXPECT_EQ(now(), 500); // resumed at the child's finish time
    });
    s.run();
}

TEST(Engine, JoinFinishedProcessReturnsImmediately) {
    simulation s;
    s.spawn("parent", [&] {
        process& child = s.spawn("quick", [] {});
        advance(100_ns); // child runs (and finishes) during this advance
        EXPECT_TRUE(child.finished());
        join(child);
        EXPECT_EQ(now(), 100);
    });
    s.run();
}

TEST(Engine, SelfJoinRejected) {
    simulation s;
    s.spawn("p", [] { join(self()); });
    EXPECT_THROW(s.run(), check_error);
}

TEST(Engine, SpawnDuringRunStartsAtParentTime) {
    simulation s;
    time_ns child_start = -1;
    s.spawn("parent", [&] {
        advance(250_ns);
        s.spawn("child", [&] { child_start = now(); });
        advance(1_ns); // let the child run
    });
    s.run();
    EXPECT_EQ(child_start, 250);
}

TEST(Engine, SpawnAfterRunRejected) {
    simulation s;
    s.spawn("p", [] {});
    s.run();
    EXPECT_THROW(s.spawn("late", [] {}), check_error);
}

TEST(Engine, ManyProcessesDeterministicOrder) {
    // Two identical runs must produce identical event sequences.
    auto run_once = [] {
        simulation s;
        std::vector<std::pair<int, time_ns>> log;
        for (int i = 0; i < 8; ++i) {
            s.spawn("p" + std::to_string(i), [&log, i] {
                for (int k = 0; k < 5; ++k) {
                    advance((i * 7 + k * 13) % 50);
                    log.emplace_back(i, now());
                }
            });
        }
        s.run();
        return log;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, YieldAllowsSameTimePeer) {
    simulation s;
    std::vector<char> order;
    s.spawn("a", [&] {
        order.push_back('A');
        yield();
        order.push_back('C');
    });
    s.spawn("b", [&] { order.push_back('B'); });
    s.run();
    EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C'}));
}

TEST(Engine, StatsCountSwitchesAndSpawns) {
    simulation s;
    s.spawn("a", [] { advance(10_ns); });
    s.spawn("b", [] { advance(5_ns); });
    s.run();
    EXPECT_EQ(s.stats().processes_spawned, 2u);
    EXPECT_GE(s.stats().context_switches, 2u);
}

TEST(Engine, FastPathNoSwitchForLoneRunner) {
    simulation s;
    s.spawn("only", [] {
        for (int i = 0; i < 1000; ++i) advance(1_ns);
    });
    s.run();
    // A single runnable process re-schedules itself without handoffs:
    // only the initial grant counts.
    EXPECT_LE(s.stats().context_switches, 2u);
}

TEST(Engine, ClockIsMonotonicAcrossProcesses) {
    simulation s;
    std::vector<time_ns> stamps;
    s.spawn("a", [&] {
        for (int i = 0; i < 10; ++i) {
            advance(7_ns);
            stamps.push_back(now());
        }
    });
    s.spawn("b", [&] {
        for (int i = 0; i < 10; ++i) {
            advance(11_ns);
            stamps.push_back(now());
        }
    });
    s.run();
    // The *global* observation order must be non-decreasing.
    for (std::size_t i = 1; i < stamps.size(); ++i) {
        EXPECT_LE(stamps[i - 1], stamps[i]);
    }
}

} // namespace
} // namespace aurora::sim
