#include "sim/event.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace aurora::sim {
namespace {

using namespace aurora::sim::literals;

TEST(Event, WaitBlocksUntilSet) {
    simulation s;
    event ev(s);
    std::vector<std::string> log;
    s.spawn("waiter", [&] {
        ev.wait();
        log.push_back("woke@" + std::to_string(now()));
    });
    s.spawn("setter", [&] {
        advance(300_ns);
        ev.set();
        log.push_back("set@" + std::to_string(now()));
    });
    s.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], "set@300");
    EXPECT_EQ(log[1], "woke@300");
}

TEST(Event, WaitOnAlreadySetReturnsImmediately) {
    simulation s;
    event ev(s);
    s.spawn("setter", [&] { ev.set(); });
    s.spawn("waiter", [&] {
        advance(10_ns);
        ev.wait();
        EXPECT_EQ(now(), 10); // set at t=0 is in the waiter's past
    });
    s.run();
}

TEST(Event, SetTimeCarriesForwardToLateWaiters) {
    simulation s;
    event ev(s);
    s.spawn("setter", [&] {
        advance(500_ns);
        ev.set();
    });
    s.spawn("waiter", [&] {
        // Still at t=0 when it calls wait (the setter runs only once the
        // waiter blocks); after wake the clock must be the set time.
        ev.wait();
        EXPECT_EQ(now(), 500);
    });
    s.run();
}

TEST(Event, ResetAllowsReblocking) {
    simulation s;
    event ev(s);
    int wakes = 0;
    s.spawn("waiter", [&] {
        ev.wait();
        ++wakes;
        ev.reset();
        ev.wait();
        ++wakes;
    });
    s.spawn("setter", [&] {
        advance(100_ns);
        ev.set();
        advance(100_ns);
        ev.set();
    });
    s.run();
    EXPECT_EQ(wakes, 2);
}

TEST(Event, MultipleWaitersAllWake) {
    simulation s;
    event ev(s);
    int woke = 0;
    for (int i = 0; i < 5; ++i) {
        s.spawn("w" + std::to_string(i), [&] {
            ev.wait();
            ++woke;
        });
    }
    s.spawn("setter", [&] {
        advance(50_ns);
        ev.set();
    });
    s.run();
    EXPECT_EQ(woke, 5);
}

TEST(Event, IsSetReflectsState) {
    simulation s;
    event ev(s);
    s.spawn("p", [&] {
        EXPECT_FALSE(ev.is_set());
        ev.set();
        EXPECT_TRUE(ev.is_set());
        ev.reset();
        EXPECT_FALSE(ev.is_set());
    });
    s.run();
}

TEST(Event, WaiterNeverSignalledIsDeadlock) {
    simulation s;
    event ev(s);
    s.spawn("waiter", [&] { ev.wait(); });
    EXPECT_THROW(s.run(), simulation_error);
}

TEST(Condition, WaitPredicate) {
    simulation s;
    condition cond(s);
    int value = 0;
    s.spawn("consumer", [&] {
        cond.wait([&] { return value == 3; });
        EXPECT_EQ(now(), 30);
    });
    s.spawn("producer", [&] {
        for (int i = 0; i < 3; ++i) {
            advance(10_ns);
            ++value;
            cond.notify_all();
        }
    });
    s.run();
    EXPECT_EQ(value, 3);
}

TEST(Condition, PredicateAlreadyTrueDoesNotBlock) {
    simulation s;
    condition cond(s);
    s.spawn("p", [&] {
        cond.wait([] { return true; });
        EXPECT_EQ(now(), 0);
    });
    s.run();
}

TEST(SimQueue, PushPopFifo) {
    simulation s;
    sim_queue<int> q(s);
    std::vector<int> got;
    s.spawn("consumer", [&] {
        for (int i = 0; i < 3; ++i) got.push_back(q.pop());
    });
    s.spawn("producer", [&] {
        for (int i = 1; i <= 3; ++i) {
            advance(10_ns);
            q.push(i * 11);
        }
    });
    s.run();
    EXPECT_EQ(got, (std::vector<int>{11, 22, 33}));
}

TEST(SimQueue, PopBlocksAndCarriesTime) {
    simulation s;
    sim_queue<int> q(s);
    s.spawn("consumer", [&] {
        const int v = q.pop();
        EXPECT_EQ(v, 7);
        EXPECT_EQ(now(), 250);
    });
    s.spawn("producer", [&] {
        advance(250_ns);
        q.push(7);
    });
    s.run();
}

TEST(SimQueue, TryPopNonBlocking) {
    simulation s;
    sim_queue<int> q(s);
    s.spawn("p", [&] {
        int out = 0;
        EXPECT_FALSE(q.try_pop(out));
        q.push(5);
        EXPECT_TRUE(q.try_pop(out));
        EXPECT_EQ(out, 5);
        EXPECT_TRUE(q.empty());
    });
    s.run();
}

TEST(SimQueue, SizeTracksContents) {
    simulation s;
    sim_queue<std::string> q(s);
    s.spawn("p", [&] {
        q.push("a");
        q.push("b");
        EXPECT_EQ(q.size(), 2u);
        (void)q.pop();
        EXPECT_EQ(q.size(), 1u);
    });
    s.run();
}

TEST(SimQueue, MoveOnlyPayload) {
    simulation s;
    sim_queue<std::unique_ptr<int>> q(s);
    s.spawn("p", [&] {
        q.push(std::make_unique<int>(42));
        auto v = q.pop();
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, 42);
    });
    s.run();
}

} // namespace
} // namespace aurora::sim
