#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace aurora::sim {
namespace {

TEST(CostModel, TransferNsBasics) {
    // 1 GiB at 1 GiB/s takes one second.
    EXPECT_EQ(transfer_ns(GiB, 1.0), 1'000'000'000);
    // Zero bytes cost nothing.
    EXPECT_EQ(transfer_ns(0, 10.0), 0);
    // Degenerate bandwidth is treated as free (callers guard against it).
    EXPECT_EQ(transfer_ns(100, 0.0), 0);
}

TEST(CostModel, TransferNsMonotoneInSize) {
    duration_ns prev = 0;
    for (std::uint64_t n = 8; n <= 256 * MiB; n *= 2) {
        const auto t = transfer_ns(n, 10.6);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(CostModel, TransferNsMonotoneInBandwidth) {
    EXPECT_GT(transfer_ns(MiB, 1.0), transfer_ns(MiB, 10.0));
}

TEST(CostModel, PagesFor) {
    EXPECT_EQ(pages_for(1, page_size::small_4k), 1u);
    EXPECT_EQ(pages_for(4096, page_size::small_4k), 1u);
    EXPECT_EQ(pages_for(4097, page_size::small_4k), 2u);
    EXPECT_EQ(pages_for(64 * MiB, page_size::huge_2m), 32u);
    EXPECT_EQ(pages_for(64 * MiB, page_size::huge_64m), 1u);
}

TEST(CostModel, PageBytes) {
    EXPECT_EQ(page_bytes(page_size::small_4k), 4 * KiB);
    EXPECT_EQ(page_bytes(page_size::ve_64k), 64 * KiB);
    EXPECT_EQ(page_bytes(page_size::huge_2m), 2 * MiB);
    EXPECT_EQ(page_bytes(page_size::huge_64m), 64 * MiB);
}

TEST(CostModel, TranslationCostOrderedByPageSize) {
    // Per *page* cost grows with page size, but per *byte* cost shrinks —
    // that is why huge pages matter (paper Sec. V-B).
    cost_model cm;
    EXPECT_LT(veos_translate_page_ns(cm, page_size::small_4k),
              veos_translate_page_ns(cm, page_size::huge_2m));
    const double per_byte_4k =
        double(veos_translate_page_ns(cm, page_size::small_4k)) / (4 * KiB);
    const double per_byte_2m =
        double(veos_translate_page_ns(cm, page_size::huge_2m)) / (2 * MiB);
    EXPECT_GT(per_byte_4k, 50.0 * per_byte_2m);
}

TEST(CostModel, LhmSustainedRateMatchesTable4) {
    // Table IV: LHM (VH=>VE) 0.01 GiB/s sustained.
    cost_model cm;
    const double gib_s = 8.0 / double(cm.lhm_word_ns) /* B/ns */ * 1e9 / double(GiB);
    EXPECT_NEAR(gib_s, 0.012, 0.004);
}

TEST(CostModel, ShmSustainedRateMatchesTable4) {
    // Table IV: SHM (VE=>VH) 0.06 GiB/s sustained.
    cost_model cm;
    const double gib_s = 8.0 / double(cm.shm_word_ns) * 1e9 / double(GiB);
    EXPECT_NEAR(gib_s, 0.06, 0.005);
}

TEST(CostModel, UserDmaFasterThanVeoForAllSizes) {
    // Sec. V-B: "VE user DMA is always faster than VEO's read and write".
    cost_model cm;
    for (std::uint64_t n = 8; n <= 256 * MiB; n *= 4) {
        const auto dma = cm.ve_dma_post_ns + cm.ve_dma_latency_ns +
                         transfer_ns(n, cm.ve_dma_read_gib);
        const auto veo = cm.veo_write_base_ns + transfer_ns(n, cm.veo_write_link_gib);
        EXPECT_LT(dma, veo) << "size " << n;
    }
}

TEST(CostModel, PeakRatesBelowPcieEffectivePeak) {
    // Nothing may exceed the 13.4 GiB/s effective PCIe ceiling (Sec. V).
    cost_model cm;
    EXPECT_LT(cm.ve_dma_read_gib, cm.pcie_effective_peak_gib);
    EXPECT_LT(cm.ve_dma_write_gib, cm.pcie_effective_peak_gib);
    EXPECT_LT(cm.veo_write_link_gib, cm.pcie_effective_peak_gib);
    EXPECT_LT(cm.veo_read_link_gib, cm.pcie_effective_peak_gib);
}

} // namespace
} // namespace aurora::sim
