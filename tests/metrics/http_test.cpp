// Embedded HTTP listener: real-socket scrape of /metrics, error paths, and
// the periodic JSON delta export.
#include "metrics/http_listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "metrics/metrics.hpp"

namespace aurora::metrics {
namespace {

/// Blocking loopback HTTP GET; returns the full response (headers + body).
std::string http_get(int port, const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return "";
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string req =
        "GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    (void)::send(fd, req.data(), req.size(), 0);
    std::string resp;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return resp;
}

TEST(HttpListener, ServesMetricsOnEphemeralPort) {
    registry reg;
    reg.counter_for("http_test_total", "node=\"1\"", "scrape fixture").add(12);

    http_listener lis;
    http_listener::options opt;
    opt.port = 0; // kernel-assigned
    opt.reg = &reg;
    ASSERT_TRUE(lis.start(opt));
    ASSERT_TRUE(lis.running());
    ASSERT_GT(lis.port(), 0);

    const std::string resp = http_get(lis.port(), "/metrics");
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(resp.find("# TYPE http_test_total counter"), std::string::npos);
    EXPECT_NE(resp.find("http_test_total{node=\"1\"} 12"), std::string::npos);

    // A scrape sees updates made after start (live registry, not a copy).
    reg.counter_for("http_test_total", "node=\"1\"").add(1);
    EXPECT_NE(http_get(lis.port(), "/metrics")
                  .find("http_test_total{node=\"1\"} 13"),
              std::string::npos);

    EXPECT_NE(http_get(lis.port(), "/healthz").find("HTTP/1.1 200"),
              std::string::npos);
    EXPECT_NE(http_get(lis.port(), "/nope").find("HTTP/1.1 404"),
              std::string::npos);

    lis.stop();
    EXPECT_FALSE(lis.running());
}

TEST(HttpListener, SecondListenerOnSamePortFails) {
    registry reg;
    http_listener a;
    ASSERT_TRUE(a.start({.port = 0, .json_path = "", .json_period_ms = 0,
                         .reg = &reg}));
    http_listener b;
    EXPECT_FALSE(b.start({.port = a.port(), .json_path = "",
                          .json_period_ms = 0, .reg = &reg}));
    a.stop();
}

TEST(HttpListener, PeriodicJsonDeltaExport) {
    registry reg;
    reg.counter_for("periodic_total").add(5);

    const std::string path =
        testing::TempDir() + "aurora_metrics_periodic.jsonl";
    std::remove(path.c_str());

    http_listener lis;
    http_listener::options opt;
    opt.port = 0;
    opt.json_path = path;
    opt.json_period_ms = 50;
    opt.reg = &reg;
    ASSERT_TRUE(lis.start(opt));

    // Produce across a few periods, then give the exporter a deadline to
    // have appended at least two delta lines.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::string content;
    while (std::chrono::steady_clock::now() < deadline) {
        reg.counter_for("periodic_total").add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        content = ss.str();
        if (std::count(content.begin(), content.end(), '\n') >= 2) {
            break;
        }
    }
    lis.stop();
    ASSERT_GE(std::count(content.begin(), content.end(), '\n'), 2)
        << "periodic export produced: " << content;
    // Every line is a bench-JSON delta object for the same registry.
    std::istringstream lines(content);
    std::string line;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.rfind("{\"bench\":\"aurora_metrics_delta\"", 0), 0)
            << line;
        EXPECT_NE(line.find("periodic_total"), std::string::npos) << line;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace aurora::metrics
