// aurora::metrics::histogram — bucket geometry, percentile math, merge.
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace aurora::metrics {
namespace {

TEST(HistogramBuckets, IndexMatchesBitWidth) {
    EXPECT_EQ(histogram::bucket_index(0), 0u);
    EXPECT_EQ(histogram::bucket_index(1), 1u);
    EXPECT_EQ(histogram::bucket_index(2), 2u);
    EXPECT_EQ(histogram::bucket_index(3), 2u);
    EXPECT_EQ(histogram::bucket_index(4), 3u);
    EXPECT_EQ(histogram::bucket_index(1023), 10u);
    EXPECT_EQ(histogram::bucket_index(1024), 11u);
    EXPECT_EQ(histogram::bucket_index(~std::uint64_t{0}), 64u);
}

TEST(HistogramBuckets, BoundsArePowerOfTwoRanges) {
    // Bucket i covers exactly [2^(i-1), 2^i - 1]; bucket 0 holds value 0.
    EXPECT_EQ(histogram::bucket_lower(0), 0u);
    EXPECT_EQ(histogram::bucket_upper(0), 0u);
    for (std::size_t i = 1; i < histogram::num_buckets; ++i) {
        EXPECT_EQ(histogram::bucket_index(histogram::bucket_lower(i)), i);
        EXPECT_EQ(histogram::bucket_index(histogram::bucket_upper(i)), i);
        if (i > 1) {
            EXPECT_EQ(histogram::bucket_lower(i),
                      histogram::bucket_upper(i - 1) + 1);
        }
    }
    EXPECT_EQ(histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(HistogramPercentile, EmptyIsZero) {
    histogram h;
    const auto s = h.snap();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.percentile(50.0), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.max, 0u);
}

TEST(HistogramPercentile, SingleValueBucketsAreExact) {
    // Values 0 and 1 live in width-zero buckets: every percentile is exact.
    histogram h;
    for (int i = 0; i < 10; ++i) h.record(0);
    for (int i = 0; i < 10; ++i) h.record(1);
    const auto s = h.snap();
    EXPECT_EQ(s.count, 20u);
    EXPECT_DOUBLE_EQ(s.percentile(25.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(75.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 1.0);
    EXPECT_EQ(s.max, 1u);
}

TEST(HistogramPercentile, InterpolatesInsideBucket) {
    // 90 entries in bucket [1024, 2047], 10 in [2048, 4095]. Documented
    // formula: rank r = clamp(ceil(q/100 * count), 1, count); inside a
    // bucket, lo + (hi - lo) * (r - cum_before) / n.
    histogram h;
    for (int i = 0; i < 90; ++i) h.record(1500);
    for (int i = 0; i < 10; ++i) h.record(3000);
    const auto s = h.snap();
    // p50: rank 50 in the first bucket.
    EXPECT_DOUBLE_EQ(s.p50(), 1024.0 + (2047.0 - 1024.0) * 50.0 / 90.0);
    // p99: rank 99 -> 9th of 10 entries in the second bucket.
    EXPECT_DOUBLE_EQ(s.p99(), 2048.0 + (4095.0 - 2048.0) * 9.0 / 10.0);
    // p100 = upper bound of the highest occupied bucket; max is exact.
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 4095.0);
    EXPECT_EQ(s.max, 3000u);
}

TEST(HistogramPercentile, LowQClampsToRankOne) {
    histogram h;
    h.record(100);
    h.record(200);
    // q=0 still resolves to the first recorded rank, not to zero.
    EXPECT_GE(h.snap().percentile(0.0), 64.0); // bucket [64, 127]
}

TEST(HistogramPercentile, SumAndMeanTrackExactly) {
    histogram h;
    std::uint64_t expect_sum = 0;
    for (std::uint64_t v = 0; v < 1000; ++v) {
        h.record(v * 7);
        expect_sum += v * 7;
    }
    const auto s = h.snap();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_EQ(s.sum, expect_sum);
    EXPECT_DOUBLE_EQ(s.mean(), double(expect_sum) / 1000.0);
    EXPECT_EQ(s.max, 999u * 7u);
}

TEST(HistogramMerge, ElementWiseAccumulate) {
    histogram a, b;
    for (int i = 0; i < 50; ++i) a.record(10);
    for (int i = 0; i < 50; ++i) b.record(100000);
    auto sa = a.snap();
    const auto sb = b.snap();
    sa.merge(sb);
    EXPECT_EQ(sa.count, 100u);
    EXPECT_EQ(sa.sum, 50u * 10u + 50u * 100000u);
    EXPECT_EQ(sa.max, 100000u);
    EXPECT_EQ(sa.buckets[histogram::bucket_index(10)], 50u);
    EXPECT_EQ(sa.buckets[histogram::bucket_index(100000)], 50u);
    // The merged distribution's median sits between the two modes.
    EXPECT_GE(sa.p50(), 8.0);
    EXPECT_LE(sa.p50(), 15.0);
    EXPECT_GT(sa.p99(), 65536.0);
}

TEST(HistogramConcurrency, ParallelRecordsLoseNothing) {
    // 8 threads x 100k records: count, sum and every bucket must be exact
    // (relaxed atomics lose no increments). Run under TSan in CI.
    histogram h;
    constexpr int threads = 8;
    constexpr std::uint64_t per_thread = 100'000;
    std::vector<std::thread> ts;
    ts.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                h.record(std::uint64_t(t) * 1000 + (i & 511));
            }
        });
    }
    for (auto& t : ts) t.join();
    const auto s = h.snap();
    EXPECT_EQ(s.count, threads * per_thread);
    std::uint64_t bucket_total = 0;
    for (const auto b : s.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, threads * per_thread);
    EXPECT_EQ(s.max, 7u * 1000u + 511u);
}

} // namespace
} // namespace aurora::metrics
