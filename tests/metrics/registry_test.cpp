// aurora::metrics::registry — instrument identity, label handling, the
// trace-counter bridge, and concurrent update integrity.
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace aurora::metrics {
namespace {

TEST(Labels, FormatsAndEscapes) {
    EXPECT_EQ(labels({}), "");
    EXPECT_EQ(labels({{"node", "1"}}), "node=\"1\"");
    EXPECT_EQ(labels({{"backend", "vedma"}, {"node", "2"}}),
              "backend=\"vedma\",node=\"2\"");
    EXPECT_EQ(labels({{"k", "a\"b\\c\nd"}}), "k=\"a\\\"b\\\\c\\nd\"");
}

TEST(Registry, FindOrCreateReturnsStableIdentity) {
    registry reg;
    counter& a = reg.counter_for("reg_test_total", "node=\"1\"");
    counter& b = reg.counter_for("reg_test_total", "node=\"1\"");
    EXPECT_EQ(&a, &b);
    counter& other = reg.counter_for("reg_test_total", "node=\"2\"");
    EXPECT_NE(&a, &other);
    a.add(3);
    other.add(5);
    EXPECT_EQ(a.value(), 3u);
    EXPECT_EQ(other.value(), 5u);
}

TEST(Registry, FindDoesNotCreate) {
    registry reg;
    EXPECT_EQ(reg.find_counter("absent_total"), nullptr);
    EXPECT_EQ(reg.find_gauge("absent"), nullptr);
    EXPECT_EQ(reg.find_histogram("absent_ns"), nullptr);
    reg.histogram_for("present_ns", "node=\"1\"").record(7);
    ASSERT_NE(reg.find_histogram("present_ns", "node=\"1\""), nullptr);
    EXPECT_EQ(reg.find_histogram("present_ns", "node=\"2\""), nullptr);
    EXPECT_EQ(reg.find_histogram("present_ns", "node=\"1\"")->snap().count, 1u);
}

TEST(Registry, FirstHelpWins) {
    registry reg;
    reg.counter_for("help_test_total", "", "the real help");
    reg.counter_for("help_test_total", "x=\"1\"", "ignored");
    const auto families = reg.snapshot();
    ASSERT_EQ(families.size(), 1u);
    EXPECT_EQ(families[0].help, "the real help");
    EXPECT_EQ(families[0].series.size(), 2u);
}

TEST(Registry, SnapshotIsSortedAndTyped) {
    registry reg;
    reg.gauge_for("zz_level").set(-4);
    reg.counter_for("aa_total", "b=\"2\"").add(1);
    reg.counter_for("aa_total", "a=\"1\"").add(2);
    reg.histogram_for("mm_ns").record(1000);

    const auto families = reg.snapshot();
    ASSERT_EQ(families.size(), 3u);
    EXPECT_EQ(families[0].name, "aa_total");
    EXPECT_EQ(families[0].kind, instrument_kind::counter);
    ASSERT_EQ(families[0].series.size(), 2u);
    // Series are sorted by label string.
    EXPECT_EQ(families[0].series[0].labels, "a=\"1\"");
    EXPECT_EQ(families[0].series[0].value, 2);
    EXPECT_EQ(families[1].name, "mm_ns");
    EXPECT_EQ(families[1].kind, instrument_kind::histogram);
    EXPECT_EQ(families[1].series[0].hist.count, 1u);
    EXPECT_EQ(families[2].name, "zz_level");
    EXPECT_EQ(families[2].series[0].value, -4);
}

TEST(Registry, ConcurrentFindOrCreateAndUpdate) {
    // 8 threads hammer the same 4 series through find-or-create; totals
    // must be exact and every thread must resolve identical pointers.
    registry reg;
    constexpr int threads = 8;
    constexpr int iters = 100'000;
    std::vector<std::thread> ts;
    std::vector<counter*> seen(threads * 4, nullptr);
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&reg, &seen, t] {
            const char* lbl[4] = {"n=\"0\"", "n=\"1\"", "n=\"2\"", "n=\"3\""};
            for (int s = 0; s < 4; ++s) {
                counter& c = reg.counter_for("stress_total", lbl[s]);
                seen[std::size_t(t * 4 + s)] = &c;
                for (int i = 0; i < iters; ++i) {
                    c.add(1);
                }
            }
        });
    }
    for (auto& t : ts) t.join();
    std::set<counter*> unique(seen.begin(), seen.end());
    EXPECT_EQ(unique.size(), 4u);
    for (int s = 0; s < 4; ++s) {
        const counter* c = reg.find_counter(
            "stress_total", std::string("n=\"") + char('0' + s) + '"');
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->value(), std::uint64_t(threads) * iters);
    }
}

TEST(TraceBridge, CounterSitesFeedTheRegistry) {
    // AURORA_TRACE_COUNTER sites always feed aurora_trace_counter_total,
    // whether or not tracing is enabled. Deltas (not absolutes): the global
    // registry accumulates across tests in this binary.
    counter& c = trace_bridge_counter("bridge_test", "events");
    const std::uint64_t before = c.value();
    trace::count("bridge_test", "events", 3);
    trace::count("bridge_test", "events");
    EXPECT_EQ(c.value(), before + 4);

    const counter* found = registry::global().find_counter(
        "aurora_trace_counter_total",
        "cat=\"bridge_test\",name=\"events\"");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &c);
}

TEST(TraceBridge, DistinctSitesGetDistinctSeries) {
    counter& a = trace_bridge_counter("bridge_test", "a");
    counter& b = trace_bridge_counter("bridge_test", "b");
    EXPECT_NE(&a, &b);
    // Pointer-identity cache: the same literals resolve to the same counter.
    EXPECT_EQ(&trace_bridge_counter("bridge_test", "a"), &a);
}

} // namespace
} // namespace aurora::metrics
