// Exposition tests: a golden-file check of the Prometheus text format plus
// structural invariants (cumulative buckets, +Inf == _count), bench-JSON
// flattening, and snapshot deltas.
//
// Regenerate the golden file after an intentional format change with
//   METRICS_GOLDEN_REGEN=1 ./test_metrics --gtest_filter='PrometheusGolden.*'
#include "metrics/prometheus.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "metrics/metrics.hpp"

namespace aurora::metrics {
namespace {

/// A fixed registry covering every instrument kind, multiple label sets and
/// the exposition edge cases (help-less family, unlabeled series, zero and
/// high buckets).
void fill_fixture(registry& reg) {
    reg.counter_for("fix_messages_total", "backend=\"loopback\",node=\"1\"",
                    "messages sent")
        .add(42);
    reg.counter_for("fix_messages_total", "backend=\"vedma\",node=\"2\"",
                    "messages sent")
        .add(7);
    reg.gauge_for("fix_queue_depth", "node=\"1\"", "current queue length")
        .set(-3);
    reg.counter_for("fix_helpless_total").add(1);

    histogram& h =
        reg.histogram_for("fix_latency_ns", "node=\"1\"", "round trips");
    h.record(0);
    h.record(1);
    for (int i = 0; i < 10; ++i) h.record(1500);
    h.record(1u << 20);
}

std::string golden_path() {
    return std::string(METRICS_TEST_GOLDEN_DIR) + "/metrics.prom";
}

TEST(PrometheusGolden, MatchesGoldenFile) {
    registry reg;
    fill_fixture(reg);
    const std::string text = prometheus_text(reg);

    if (std::getenv("METRICS_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(golden_path(), std::ios::binary);
        out << text;
        GTEST_SKIP() << "regenerated " << golden_path();
    }
    std::ifstream in(golden_path(), std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << golden_path();
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(text, want.str());
}

TEST(PrometheusText, StructuralInvariants) {
    registry reg;
    fill_fixture(reg);
    std::istringstream is(prometheus_text(reg));

    // Cumulative buckets must be monotonic and end at +Inf == _count;
    // HELP/TYPE precede their samples.
    std::string line;
    long long prev_bucket = -1;
    long long inf_value = -1;
    long long count_value = -1;
    bool saw_type_histogram = false;
    while (std::getline(is, line)) {
        if (line.rfind("# TYPE fix_latency_ns ", 0) == 0) {
            EXPECT_EQ(line, "# TYPE fix_latency_ns histogram");
            saw_type_histogram = true;
        }
        if (line.rfind("fix_latency_ns_bucket", 0) == 0) {
            EXPECT_TRUE(saw_type_histogram) << "sample before its TYPE line";
            const long long v = std::atoll(line.substr(line.rfind(' ')).c_str());
            EXPECT_GE(v, prev_bucket) << line;
            prev_bucket = v;
            if (line.find("le=\"+Inf\"") != std::string::npos) {
                inf_value = v;
            }
        }
        if (line.rfind("fix_latency_ns_count", 0) == 0) {
            count_value = std::atoll(line.substr(line.rfind(' ')).c_str());
        }
    }
    EXPECT_EQ(inf_value, 13);
    EXPECT_EQ(count_value, 13);
}

TEST(PrometheusText, BucketBoundsArePowerOfTwoUppers) {
    registry reg;
    reg.histogram_for("pow2_ns").record(1500); // bucket 11: [1024, 2047]
    const std::string text = prometheus_text(reg);
    // All lower buckets are emitted cumulatively, with 2^i - 1 bounds.
    EXPECT_NE(text.find("pow2_ns_bucket{le=\"0\"} 0"), std::string::npos);
    EXPECT_NE(text.find("pow2_ns_bucket{le=\"1023\"} 0"), std::string::npos);
    EXPECT_NE(text.find("pow2_ns_bucket{le=\"2047\"} 1"), std::string::npos);
    EXPECT_NE(text.find("pow2_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
    // Nothing above the highest occupied bucket except +Inf.
    EXPECT_EQ(text.find("le=\"4095\""), std::string::npos);
}

TEST(BenchJson, FlattensEveryKind) {
    registry reg;
    reg.counter_for("bj_total", "node=\"1\"").add(5);
    reg.gauge_for("bj_level").set(-2);
    histogram& h = reg.histogram_for("bj_ns");
    for (int i = 0; i < 100; ++i) h.record(1000);

    const std::string json = bench_json(reg.snapshot(), "unit_test");
    EXPECT_NE(json.find("{\"bench\":\"unit_test\",\"metrics\":{"),
              std::string::npos);
    // Label quotes are escaped so the result stays valid JSON.
    EXPECT_NE(json.find("\"bj_total{node=\\\"1\\\"}\":5"), std::string::npos);
    EXPECT_NE(json.find("\"bj_level\":-2"), std::string::npos);
    EXPECT_NE(json.find("\"bj_ns:count\":100"), std::string::npos);
    EXPECT_NE(json.find("\"bj_ns:sum\":100000"), std::string::npos);
    EXPECT_NE(json.find("\"bj_ns:max\":1000"), std::string::npos);
    EXPECT_NE(json.find("\"bj_ns:p50\":"), std::string::npos);
    EXPECT_NE(json.find("\"bj_ns:p999\":"), std::string::npos);
}

TEST(SnapshotDelta, CountersSubtractGaugesLevel) {
    registry reg;
    counter& c = reg.counter_for("d_total");
    gauge& g = reg.gauge_for("d_level");
    histogram& h = reg.histogram_for("d_ns");
    c.add(10);
    g.set(5);
    h.record(100);
    const auto prev = reg.snapshot();
    c.add(3);
    g.set(8);
    h.record(100);
    h.record(200);
    const auto cur = reg.snapshot();

    const auto delta = snapshot_delta(prev, cur);
    ASSERT_EQ(delta.size(), 3u);
    for (const auto& fam : delta) {
        if (fam.name == "d_total") {
            EXPECT_EQ(fam.series[0].value, 3);
        } else if (fam.name == "d_level") {
            EXPECT_EQ(fam.series[0].value, 8); // level, not rate
        } else {
            EXPECT_EQ(fam.series[0].hist.count, 2u);
            EXPECT_EQ(fam.series[0].hist.sum, 300u);
            EXPECT_EQ(fam.series[0].hist.max, 200u); // cumulative by design
        }
    }
}

TEST(SnapshotDelta, NewSeriesPassThrough) {
    registry reg;
    reg.counter_for("old_total").add(1);
    const auto prev = reg.snapshot();
    reg.counter_for("old_total").add(1);
    reg.counter_for("new_total").add(9);
    const auto delta = snapshot_delta(prev, reg.snapshot());
    for (const auto& fam : delta) {
        if (fam.name == "new_total") {
            EXPECT_EQ(fam.series[0].value, 9);
        } else {
            EXPECT_EQ(fam.series[0].value, 1);
        }
    }
}

} // namespace
} // namespace aurora::metrics
