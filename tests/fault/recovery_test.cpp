// Hardened-runtime recovery tests: retry/backoff under injected faults,
// checksum NACK recovery, reply-timeout retransmission, target health
// transitions, attach failures, and prompt future failure on target death.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "fault/fault.hpp"
#include "offload/offload.hpp"
#include "sim/platform.hpp"

namespace ham::offload {
namespace {

namespace fault = aurora::fault;
namespace sim = aurora::sim;

void empty_kernel() {}
double add_one(double x) { return x + 1.0; }
void slow_kernel(std::int64_t ns) { sim::advance(ns); }

runtime_options loopback_targets(std::size_t n) {
    runtime_options opt;
    opt.backend = backend_kind::loopback;
    opt.targets.assign(n, 0);
    return opt;
}

/// Run `body` under a virtual-time deadline: recovery must terminate, never
/// hang — a stalled retry loop aborts the simulation instead of the test run.
void run_guarded(const runtime_options& opt, const std::function<void()>& body,
                 sim::time_ns deadline_ns = 60'000'000'000) {
    sim::platform plat(sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(deadline_ns);
    ASSERT_EQ(run(plat, opt, body), 0);
}

class FaultRecovery : public ::testing::Test {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

TEST_F(FaultRecovery, DroppedMessagesRecoverViaTimeoutRetransmit) {
    fault::config c;
    c.enabled = true;
    c.seed = 11;
    c.drop_permille = 150;
    fault::injector::instance().configure(c);

    run_guarded(loopback_targets(1), [] {
        for (int i = 0; i < 60; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(double(i))), double(i) + 1.0);
        }
        const auto rs = runtime::current()->runtime_stats(1);
        EXPECT_NE(rs.health, target_health::failed);
        EXPECT_GT(rs.retransmits, 0u);
    });
    EXPECT_GT(fault::injector::instance().stats().drops, 0u);
}

TEST_F(FaultRecovery, CorruptedMessagesRecoverViaChecksumNack) {
    fault::config c;
    c.enabled = true;
    c.seed = 3;
    c.corrupt_permille = 200;
    fault::injector::instance().configure(c);

    run_guarded(loopback_targets(1), [] {
        for (int i = 0; i < 60; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(41.0)), 42.0);
        }
        const auto rs = runtime::current()->runtime_stats(1);
        EXPECT_NE(rs.health, target_health::failed);
        EXPECT_GT(rs.corrupt_retries, 0u);
    });
    EXPECT_GT(fault::injector::instance().stats().corruptions, 0u);
}

TEST_F(FaultRecovery, TransientSendFailuresRetryWithBackoff) {
    fault::config c;
    c.enabled = true;
    c.seed = 5;
    c.dma_fail_permille = 100;
    fault::injector::instance().configure(c);

    run_guarded(loopback_targets(1), [] {
        for (int i = 0; i < 60; ++i) {
            sync(1, ham::f2f<&empty_kernel>());
        }
        const auto rs = runtime::current()->runtime_stats(1);
        EXPECT_NE(rs.health, target_health::failed);
        EXPECT_GT(rs.send_retries, 0u);
    });
    EXPECT_GT(fault::injector::instance().stats().dma_post_failures, 0u);
}

TEST_F(FaultRecovery, SpuriousRetransmitIsIdempotentAndHealthRecovers) {
    // No probabilistic faults: a 20 us reply window against a 200 us kernel
    // forces deterministic timeout retransmissions. The target deduplicates
    // them by slot generation, the slow result still counts once, and the
    // degraded target turns healthy again after a streak of clean results.
    runtime_options opt = loopback_targets(1);
    opt.reply_timeout_ns = 20'000;
    opt.max_retries = 8;
    opt.recovery_streak = 4;
    run_guarded(opt, [] {
        EXPECT_EQ(sync(1, ham::f2f<&add_one>(1.0)), 2.0);
        auto fut = async(1, ham::f2f<&slow_kernel>(std::int64_t{200'000}));
        fut.get();
        runtime& rt = *runtime::current();
        EXPECT_GT(rt.runtime_stats(1).retransmits, 0u);
        EXPECT_EQ(rt.health(1), target_health::degraded);
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(1.0)), 2.0);
        }
        EXPECT_EQ(rt.health(1), target_health::healthy);
    });
}

TEST_F(FaultRecovery, FutureThrowsPromptlyWhenTargetDies) {
    // The target dies while holding the second message: the future must not
    // block forever — the reply timeout exhausts the retry budget, the target
    // is declared failed, and get() throws target_failed_error.
    fault::injector::instance().kill_after_messages(1, 2);
    runtime_options opt = loopback_targets(1);
    opt.reply_timeout_ns = 100'000;
    opt.max_retries = 2;
    run_guarded(opt, [] {
        sync(1, ham::f2f<&empty_kernel>());
        auto fut = async(1, ham::f2f<&add_one>(1.0));
        EXPECT_THROW(fut.get(), target_failed_error);
        runtime& rt = *runtime::current();
        EXPECT_EQ(rt.health(1), target_health::failed);
        EXPECT_FALSE(rt.failure_reason(1).empty());
        // Every later send to the dead target fails fast, same error type.
        EXPECT_THROW(sync(1, ham::f2f<&empty_kernel>()), target_failed_error);
    });
    EXPECT_EQ(fault::injector::instance().stats().kills, 1u);
}

TEST_F(FaultRecovery, AttachFailureDegradesToRemainingTargets) {
    fault::injector::instance().fail_next_attach(1);
    run_guarded(loopback_targets(2), [] {
        runtime& rt = *runtime::current();
        EXPECT_EQ(rt.health(1), target_health::failed);
        EXPECT_EQ(rt.health(2), target_health::healthy);
        EXPECT_FALSE(rt.failure_reason(1).empty());
        EXPECT_EQ(rt.descriptor(1).device_type, "unattached");
        EXPECT_THROW(sync(1, ham::f2f<&empty_kernel>()), target_failed_error);
        EXPECT_EQ(sync(2, ham::f2f<&add_one>(41.0)), 42.0);
    });
    EXPECT_EQ(fault::injector::instance().stats().attach_failures, 1u);
}

TEST_F(FaultRecovery, AllTargetsFailingToAttachThrows) {
    fault::injector::instance().fail_next_attach(1);
    sim::platform plat(sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(60'000'000'000);
    EXPECT_THROW(
        run(plat, loopback_targets(1), [] { FAIL() << "host main must not run"; }),
        target_attach_error);
}

TEST_F(FaultRecovery, WaitForIsBoundedOnVirtualTime) {
    run_guarded(loopback_targets(1), [] {
        auto fut = async(1, ham::f2f<&slow_kernel>(std::int64_t{500'000}));
        const sim::time_ns t0 = sim::now();
        EXPECT_FALSE(fut.wait_for(10'000)); // well below the kernel cost
        EXPECT_GE(sim::now(), t0 + 10'000);
        EXPECT_TRUE(fut.wait_until(t0 + 10'000'000));
        fut.get();
    });
}

} // namespace
} // namespace ham::offload
