// Chaos properties of the full self-healing stack (injector + heal runtime +
// scheduler reintegration): 4 loopback VEs run a dependency-laced task set
// under probabilistic drop/corrupt/delay faults while two of them are killed
// mid-run — one of them twice (kill -> recover -> kill -> recover). With
// recovery enabled the scheduler never re-routes: every task executes exactly
// once (the runtime replays un-acked work under the new epoch), both victims
// end the run healthy, and the whole schedule replays bit-exactly per seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "offload/offload.hpp"
#include "sched/sched.hpp"
#include "sim/platform.hpp"

namespace aurora::sched {
namespace {

namespace fault = aurora::fault;
namespace off = ham::offload;

void bump(std::uint64_t* counter) { ++*counter; }

constexpr int num_tasks = 48;
constexpr int num_targets = 4;

struct heal_outcome {
    fault::counters faults;
    std::uint64_t final_time_ns = 0;
    std::uint64_t failovers = 0;
    std::uint64_t tasks_failed_over = 0;
    std::uint64_t recoveries_ve2 = 0;
    std::uint64_t recoveries_ve3 = 0;
    std::uint64_t replayed_total = 0;
    std::uint8_t epoch_ve2 = 0;
    std::uint8_t epoch_ve3 = 0;
    off::target_health end_health_ve2 = off::target_health::failed;
    off::target_health end_health_ve3 = off::target_health::failed;
    std::vector<std::uint64_t> exec_counts;
    std::vector<std::tuple<task_id, node_t, std::uint64_t, std::uint64_t,
                           std::uint64_t>>
        trace;

    bool operator==(const heal_outcome&) const = default;
};

/// One full healing-chaos run. VE 2 dies on its 4th and again on its 10th
/// message (counted across incarnations), VE 3 dies on its 6th; recovery is
/// enabled, so both must come back and finish their own queues.
heal_outcome run_heal_chaos(std::uint64_t seed) {
    auto& inj = fault::injector::instance();
    fault::config c;
    c.enabled = true;
    c.seed = seed;
    c.drop_permille = 30;
    c.corrupt_permille = 20;
    c.delay_permille = 50;
    c.delay_ns = 20'000;
    inj.configure(c);
    inj.kill_after_messages(2, 4);
    inj.kill_after_messages(2, 10);
    inj.kill_after_messages(3, 6);

    off::runtime_options opt;
    opt.backend = off::backend_kind::loopback;
    opt.targets.assign(num_targets, 0);
    opt.reply_timeout_ns = 200'000;
    opt.max_retries = 3;
    opt.recovery.enabled = true;
    opt.recovery.backoff_ns = 50'000;
    opt.recovery_streak = 3;

    heal_outcome out;
    out.exec_counts.assign(num_tasks, 0);

    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(300'000'000'000);
    const int rc = off::run(plat, opt, [&] {
        // Locality placement deals the chains across the targets, so both
        // victims reach their fatal message counts whatever the seed injects;
        // batching is off so each task is one message (and one clean result
        // towards the probation streak).
        executor ex{{.policy = placement_policy::locality, .batching = false}};
        std::vector<task_id> ids;
        for (int i = 0; i < num_tasks; ++i) {
            std::uint64_t* count = &out.exec_counts[static_cast<std::size_t>(i)];
            if (i >= 8) {
                ids.push_back(ex.submit(ham::f2f<&bump>(count),
                                        {ids[static_cast<std::size_t>(i - 8)]}));
            } else {
                ids.push_back(ex.submit(ham::f2f<&bump>(count)));
            }
        }
        ex.wait_all();
        for (const task_id id : ids) {
            EXPECT_EQ(ex.state_of(id), task_state::done) << "task " << id;
        }
        out.failovers = ex.stats().failovers;
        out.tasks_failed_over = ex.stats().tasks_failed_over;
        for (const completion_record& r : ex.trace()) {
            out.trace.emplace_back(r.id, r.executed_on, r.start_seq, r.done_seq,
                                   r.done_time_ns);
        }
        off::runtime& rt = *off::runtime::current();
        // Finish the probation/degradation streaks so both victims are
        // promoted before the run ends. Bounded loop: probabilistic faults
        // may break a streak (a drop degrades the target again), so poke
        // until the streak completes — deterministic for a given seed.
        for (int i = 0; i < 256 && (rt.health(2) != off::target_health::healthy ||
                                    rt.health(3) != off::target_health::healthy);
             ++i) {
            std::uint64_t scratch = 0;
            off::sync(2, ham::f2f<&bump>(&scratch));
            off::sync(3, ham::f2f<&bump>(&scratch));
        }
        const auto rs2 = rt.runtime_stats(2);
        const auto rs3 = rt.runtime_stats(3);
        out.recoveries_ve2 = rs2.recoveries;
        out.recoveries_ve3 = rs3.recoveries;
        out.replayed_total = rs2.replayed + rs3.replayed;
        out.epoch_ve2 = rs2.epoch;
        out.epoch_ve3 = rs3.epoch;
        out.end_health_ve2 = rt.health(2);
        out.end_health_ve3 = rt.health(3);
    });
    EXPECT_EQ(rc, 0);
    out.faults = inj.stats();
    out.final_time_ns = static_cast<std::uint64_t>(plat.sim().now());
    inj.reset();
    return out;
}

class HealChaos : public ::testing::Test {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

TEST_F(HealChaos, KillRecoverKillRecoverCompletesExactlyOnceAcrossSeeds) {
    for (const std::uint64_t seed :
         {std::uint64_t{3}, std::uint64_t{7}, std::uint64_t{42}}) {
        const heal_outcome out = run_heal_chaos(seed);
        // All three kill triggers fired and every death was revived.
        EXPECT_EQ(out.faults.kills, 3u) << "seed " << seed;
        EXPECT_EQ(out.faults.revivals, 3u) << "seed " << seed;
        EXPECT_EQ(out.recoveries_ve2, 2u) << "seed " << seed;
        EXPECT_EQ(out.recoveries_ve3, 1u) << "seed " << seed;
        EXPECT_EQ(out.epoch_ve2, 2u) << "seed " << seed;
        EXPECT_EQ(out.epoch_ve3, 1u) << "seed " << seed;
        EXPECT_GE(out.replayed_total, 1u) << "seed " << seed;
        // Exactly once: recovery replays instead of re-routing, so no task
        // ran twice and the scheduler never failed anything over.
        for (int i = 0; i < num_tasks; ++i) {
            EXPECT_EQ(out.exec_counts[static_cast<std::size_t>(i)], 1u)
                << "task " << i << " seed " << seed;
        }
        EXPECT_EQ(out.trace.size(), static_cast<std::size_t>(num_tasks));
        EXPECT_EQ(out.failovers, 0u) << "seed " << seed;
        EXPECT_EQ(out.tasks_failed_over, 0u) << "seed " << seed;
        // Reintegration completed: both victims end the run healthy.
        EXPECT_EQ(out.end_health_ve2, off::target_health::healthy)
            << "seed " << seed;
        EXPECT_EQ(out.end_health_ve3, off::target_health::healthy)
            << "seed " << seed;
    }
}

TEST_F(HealChaos, SameSeedBitExactReplay) {
    const heal_outcome a = run_heal_chaos(42);
    const heal_outcome b = run_heal_chaos(42);
    EXPECT_EQ(a, b);
}

TEST_F(HealChaos, DependencyOrderSurvivesRecovery) {
    const heal_outcome out = run_heal_chaos(7);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> seq(num_tasks);
    for (const auto& [id, node, start, done, t] : out.trace) {
        (void)node;
        (void)t;
        seq[id] = {start, done};
    }
    for (int i = 8; i < num_tasks; ++i) {
        EXPECT_LT(seq[static_cast<std::size_t>(i - 8)].second,
                  seq[static_cast<std::size_t>(i)].first)
            << "dependency " << i - 8 << " -> " << i << " violated";
    }
}

} // namespace
} // namespace aurora::sched
