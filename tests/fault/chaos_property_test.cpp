// Seeded chaos properties over the whole stack (fault injector + hardened
// runtime + scheduler failover):
//   (a) identical seed => identical fault schedule, recovery outcome, task
//       trace and final virtual time (exact replayability),
//   (b) every submitted task completes or its future throws — no hangs,
//       enforced with a virtual-time deadline,
//   (c) scheduler failover preserves task-graph dependency order,
//   (d) killing 1 of 4 VEs mid-run still completes 100% of submitted tasks.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "offload/offload.hpp"
#include "sched/sched.hpp"
#include "sim/platform.hpp"
#include "util/env.hpp"

namespace aurora::sched {
namespace {

namespace fault = aurora::fault;
namespace off = ham::offload;

/// At-least-once probe: a task re-routed off a dying target may execute more
/// than once (the death can race its first execution), never zero times.
void bump(std::uint64_t* counter) { ++*counter; }

constexpr int num_tasks = 48;
constexpr int num_targets = 4;

struct chaos_outcome {
    fault::counters faults;
    std::uint64_t final_time_ns = 0;
    std::uint64_t failovers = 0;
    std::uint64_t tasks_failed_over = 0;
    std::vector<std::uint64_t> exec_counts;
    /// (id, executed_on, start_seq, done_seq, done_time_ns) per completion.
    std::vector<std::tuple<task_id, node_t, std::uint64_t, std::uint64_t,
                           std::uint64_t>>
        trace;

    bool operator==(const chaos_outcome&) const = default;
};

/// One full chaos run: 4 loopback VEs, a dependency-laced task set,
/// probabilistic drop/corrupt/delay/send faults, and VE 2 killed while it
/// holds its 6th message. Returns everything observable about the run.
chaos_outcome run_chaos(std::uint64_t seed) {
    auto& inj = fault::injector::instance();
    fault::config c;
    c.enabled = true;
    c.seed = seed;
    c.drop_permille = 30;
    c.corrupt_permille = 30;
    c.dma_fail_permille = 20;
    c.delay_permille = 50;
    c.delay_ns = 20'000;
    inj.configure(c);
    inj.kill_after_messages(2, 6);

    off::runtime_options opt;
    opt.backend = off::backend_kind::loopback;
    opt.targets.assign(num_targets, 0);
    opt.reply_timeout_ns = 200'000;
    opt.max_retries = 3;

    chaos_outcome out;
    out.exec_counts.assign(num_tasks, 0);

    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(300'000'000'000); // property (b): no hangs
    const int rc = off::run(plat, opt, [&] {
        // Locality placement keeps each chain on its dealt target, so VE 2
        // reaches its fatal 6th message no matter what the seed injects.
        executor ex{{.policy = placement_policy::locality}};
        std::vector<task_id> ids;
        for (int i = 0; i < num_tasks; ++i) {
            std::uint64_t* count = &out.exec_counts[static_cast<std::size_t>(i)];
            if (i >= 8) {
                // Eight interleaved dependency chains spanning all targets.
                ids.push_back(ex.submit(ham::f2f<&bump>(count),
                                        {ids[static_cast<std::size_t>(i - 8)]}));
            } else {
                ids.push_back(ex.submit(ham::f2f<&bump>(count)));
            }
        }
        ex.wait_all();
        for (const task_id id : ids) {
            EXPECT_EQ(ex.state_of(id), task_state::done) << "task " << id;
        }
        out.failovers = ex.stats().failovers;
        out.tasks_failed_over = ex.stats().tasks_failed_over;
        for (const completion_record& r : ex.trace()) {
            out.trace.emplace_back(r.id, r.executed_on, r.start_seq, r.done_seq,
                                   r.done_time_ns);
        }
    });
    EXPECT_EQ(rc, 0);
    out.faults = inj.stats();
    out.final_time_ns = static_cast<std::uint64_t>(plat.sim().now());
    inj.reset();
    return out;
}

class Chaos : public ::testing::Test {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

TEST_F(Chaos, KillOneOfFourStillCompletesEveryTask) {
    // CI sweeps this test across seeds; the completion property must hold for
    // every one of them (the replay tests below pin their own seeds).
    const auto seed = static_cast<std::uint64_t>(
        aurora::env_int_or("HAM_AURORA_FAULT_SEED", 42));
    const chaos_outcome out = run_chaos(seed);
    // The injector fired: VE 2 died, probabilistic faults occurred.
    EXPECT_EQ(out.faults.kills, 1u);
    EXPECT_GT(out.faults.drops + out.faults.corruptions +
                  out.faults.dma_post_failures + out.faults.delay_spikes,
              0u);
    // 100% completion via failover: every task ran at least once (at-least-
    // once delivery — a task the dying VE got partway through re-executes).
    for (int i = 0; i < num_tasks; ++i) {
        EXPECT_GE(out.exec_counts[static_cast<std::size_t>(i)], 1u)
            << "task " << i << " never executed";
    }
    EXPECT_EQ(out.trace.size(), static_cast<std::size_t>(num_tasks));
    EXPECT_GT(out.failovers, 0u);
    EXPECT_GT(out.tasks_failed_over, 0u);
    // Nothing completed on the dead target after its death was detected: the
    // completion trace never shows node 2 past the failover count. (Weak
    // sanity check; the strong ordering property is the test below.)
}

TEST_F(Chaos, SameSeedExactReplay) {
    for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{7}}) {
        const chaos_outcome a = run_chaos(seed);
        const chaos_outcome b = run_chaos(seed);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST_F(Chaos, DifferentSeedDifferentSchedule) {
    const chaos_outcome a = run_chaos(42);
    const chaos_outcome b = run_chaos(43);
    EXPECT_TRUE(a.faults != b.faults || a.final_time_ns != b.final_time_ns);
}

TEST_F(Chaos, FailoverPreservesDependencyOrder) {
    const chaos_outcome out = run_chaos(42);
    std::map<task_id, std::pair<std::uint64_t, std::uint64_t>> seq; // id -> (start, done)
    for (const auto& [id, node, start, done, t] : out.trace) {
        (void)node;
        (void)t;
        seq[id] = {start, done};
    }
    for (int i = 8; i < num_tasks; ++i) {
        const auto dep = seq.find(static_cast<task_id>(i - 8));
        const auto tsk = seq.find(static_cast<task_id>(i));
        ASSERT_NE(dep, seq.end());
        ASSERT_NE(tsk, seq.end());
        // done_seq[dep] < start_seq[succ] certifies the edge was honoured
        // even when either side was re-routed by failover.
        EXPECT_LT(dep->second.second, tsk->second.first)
            << "dependency " << i - 8 << " -> " << i << " violated";
    }
}

TEST_F(Chaos, AllTargetsDeadFailsFastInsteadOfHanging) {
    auto& inj = fault::injector::instance();
    inj.kill_after_messages(1, 2);

    off::runtime_options opt;
    opt.backend = off::backend_kind::loopback;
    opt.targets.assign(1, 0);
    opt.reply_timeout_ns = 100'000;
    opt.max_retries = 2;

    std::vector<std::uint64_t> counts(6, 0);
    aurora::sim::platform plat(aurora::sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(60'000'000'000);
    const int rc = off::run(plat, opt, [&] {
        executor ex{{.batching = false}};
        std::vector<task_id> ids;
        for (auto& cnt : counts) {
            ids.push_back(ex.submit(ham::f2f<&bump>(&cnt)));
        }
        EXPECT_THROW(ex.wait_all(), ham::offload::offload_error);
        // Everything settled — done before the death, failed after — and the
        // executor stays queryable.
        for (const task_id id : ids) {
            EXPECT_TRUE(ex.finished(id)) << "task " << id;
        }
    });
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(inj.stats().kills, 1u);
}

} // namespace
} // namespace aurora::sched
