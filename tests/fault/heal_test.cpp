// aurora::heal — self-healing target lifecycle tests:
//   * a killed target recovers (respawn + replay) on every backend and the
//     interrupted work completes with correct results,
//   * cross-epoch duplicate rejection: a stale flag/packet from a previous
//     incarnation is dropped at the channel layer on every backend,
//   * recovery exhaustion degenerates to the terminal aurora::fault
//     behaviour (target_failed_error, health == failed),
//   * replayed offloads execute exactly once,
//   * drain() settles every outstanding ticket before shutdown,
//   * MTTR is recorded to the aurora_heal_mttr_ns histogram,
//   * on_ready settlement is exception-safe while fail_target batches
//     synthetic results (regression: a throwing callback must not escape the
//     poll that delivered a different future's result).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "offload/offload.hpp"
#include "sim/platform.hpp"

namespace ham::offload {
namespace {

namespace fault = aurora::fault;
namespace sim = aurora::sim;
namespace m = aurora::metrics;

void empty_kernel() {}
double add_one(double x) { return x + 1.0; }
void bump(std::uint64_t* counter) { ++*counter; }

runtime_options heal_options(backend_kind kind) {
    runtime_options opt;
    opt.backend = kind;
    opt.reply_timeout_ns = 100'000; // prompt death detection
    opt.max_retries = 2;
    opt.recovery.enabled = true;
    opt.recovery.backoff_ns = 50'000;
    opt.recovery_streak = 4;
    return opt;
}

void run_guarded(const runtime_options& opt, const std::function<void()>& body,
                 sim::time_ns deadline_ns = 60'000'000'000) {
    sim::platform plat(sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(deadline_ns);
    ASSERT_EQ(run(plat, opt, body), 0);
}

class Heal : public ::testing::Test {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

class HealBackends : public ::testing::TestWithParam<backend_kind> {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

TEST_P(HealBackends, KilledTargetRecoversAndCompletesAllWork) {
    fault::injector::instance().kill_after_messages(1, 3);
    run_guarded(heal_options(GetParam()), [] {
        // Message 3 dies un-acked; recovery respawns the target under epoch 1
        // and replays it — every sync still returns the right value.
        for (int i = 0; i < 12; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(double(i))), double(i) + 1.0)
                << "offload " << i;
        }
        runtime& rt = *runtime::current();
        const auto rs = rt.runtime_stats(1);
        EXPECT_EQ(rs.recoveries, 1u);
        EXPECT_EQ(rs.epoch, 1u);
        EXPECT_GE(rs.replayed, 1u);
        // recovery_streak clean results promoted probation back to healthy.
        EXPECT_EQ(rt.health(1), target_health::healthy);
        EXPECT_EQ(rt.target_epoch(1), 1u);
    });
    EXPECT_EQ(fault::injector::instance().stats().kills, 1u);
    EXPECT_EQ(fault::injector::instance().stats().revivals, 1u);
}

TEST_P(HealBackends, CrossEpochDuplicateIsRejectedAtTheChannel) {
    fault::injector::instance().kill_after_messages(1, 2);
    const backend_kind kind = GetParam();
    run_guarded(heal_options(kind), [kind] {
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(double(i))), double(i) + 1.0);
        }
        runtime& rt = *runtime::current();
        ASSERT_EQ(rt.target_epoch(1), 1u); // the kill fired and healed

        auto& rejects = m::registry::global().counter_for(
            "aurora_heal_epoch_rejects_total",
            m::labels({{"backend", to_string(kind)}, {"node", "1"}}));
        const std::uint64_t before = rejects.value();
        // Plant a delayed retransmit from the dead incarnation (epoch 0). It
        // carries the generation the channel expects next, so only the epoch
        // check stands between it and execution.
        ASSERT_TRUE(rt.backend_for(1).inject_stale_flag(0, 0));
        sim::advance(2'000'000); // let the target poll (and reject) it
        EXPECT_EQ(rejects.value(), before + 1);

        // The stale message was never executed and the channel state is
        // intact: subsequent offloads behave normally.
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(41.0)), 42.0);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Backends, HealBackends,
                         ::testing::Values(backend_kind::loopback,
                                           backend_kind::tcp,
                                           backend_kind::veo,
                                           backend_kind::vedma),
                         [](const auto& param_info) {
                             return std::string(to_string(param_info.param));
                         });

TEST_F(Heal, ReplayedAsyncWorkExecutesExactlyOnce) {
    fault::injector::instance().kill_after_messages(1, 3);
    runtime_options opt = heal_options(backend_kind::loopback);
    std::vector<std::uint64_t> counts(8, 0);
    run_guarded(opt, [&] {
        std::vector<future<void>> futs;
        futs.reserve(counts.size());
        for (auto& c : counts) {
            futs.push_back(async(1, ham::f2f<&bump>(&c)));
        }
        for (auto& f : futs) {
            f.get(); // no throw: the killed incarnation's work replays
        }
        const auto rs = runtime::current()->runtime_stats(1);
        EXPECT_EQ(rs.recoveries, 1u);
        EXPECT_GE(rs.replayed, 1u);
    });
    for (std::size_t i = 0; i < counts.size(); ++i) {
        EXPECT_EQ(counts[i], 1u) << "task " << i;
    }
}

TEST_F(Heal, RecoveryExhaustionFailsTerminally) {
    auto& inj = fault::injector::instance();
    inj.kill_after_messages(1, 1);
    // Every respawn attempt fails to re-attach; the budget (max_attempts)
    // runs out and the target is fenced for good — aurora::fault semantics.
    // (Armed inside the run body so the initial attach succeeds.)
    runtime_options opt = heal_options(backend_kind::loopback);
    opt.recovery.max_attempts = 2;
    run_guarded(opt, [&inj] {
        inj.fail_next_attach(1);
        inj.fail_next_attach(1);
        auto fut = async(1, ham::f2f<&add_one>(1.0));
        EXPECT_THROW(fut.get(), target_failed_error);
        runtime& rt = *runtime::current();
        EXPECT_EQ(rt.health(1), target_health::failed);
        EXPECT_FALSE(rt.failure_reason(1).empty());
        EXPECT_THROW(sync(1, ham::f2f<&empty_kernel>()), target_failed_error);
    });
    EXPECT_EQ(fault::injector::instance().stats().attach_failures, 2u);
}

TEST_F(Heal, RecoverySurvivesOneFailedReattachAttempt) {
    auto& inj = fault::injector::instance();
    inj.kill_after_messages(1, 2);
    runtime_options opt = heal_options(backend_kind::veo);
    opt.recovery.max_attempts = 3;
    run_guarded(opt, [&inj] {
        inj.fail_next_attach(1); // first re-attach fails, second succeeds
        for (int i = 0; i < 6; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(double(i))), double(i) + 1.0);
        }
        const auto rs = runtime::current()->runtime_stats(1);
        EXPECT_EQ(rs.recoveries, 1u);
        EXPECT_EQ(rs.epoch, 1u);
    });
    EXPECT_EQ(fault::injector::instance().stats().attach_failures, 1u);
}

TEST_F(Heal, DrainSettlesOutstandingWorkBeforeShutdown) {
    fault::injector::instance().kill_after_messages(1, 2);
    run_guarded(heal_options(backend_kind::loopback), [] {
        auto f1 = async(1, ham::f2f<&add_one>(1.0));
        auto f2 = async(1, ham::f2f<&add_one>(2.0));
        runtime& rt = *runtime::current();
        rt.drain();
        // drain() drove the recovery and harvested every slot: both results
        // are buffered, the futures become ready without further waiting.
        EXPECT_TRUE(f1.test());
        EXPECT_TRUE(f2.test());
        EXPECT_EQ(f1.get(), 2.0);
        EXPECT_EQ(f2.get(), 3.0);
        EXPECT_NE(rt.health(1), target_health::recovering);
    });
}

TEST_F(Heal, MttrHistogramRecordsTheOutage) {
    const auto before = m::registry::global()
                            .histogram_for("aurora_heal_mttr_ns",
                                           m::labels({{"backend", "vedma"},
                                                      {"node", "1"}}))
                            .snap();
    fault::injector::instance().kill_after_messages(1, 2);
    run_guarded(heal_options(backend_kind::vedma), [] {
        for (int i = 0; i < 6; ++i) {
            sync(1, ham::f2f<&empty_kernel>());
        }
    });
    const auto after = m::registry::global()
                           .histogram_for("aurora_heal_mttr_ns",
                                          m::labels({{"backend", "vedma"},
                                                     {"node", "1"}}))
                           .snap();
    EXPECT_EQ(after.count, before.count + 1);
    // The outage spans at least the detection window (reply timeout x
    // retries) plus the re-attach backoff — virtual time, so a hard floor.
    EXPECT_GT(after.sum - before.sum, 50'000u);
}

TEST_F(Heal, OnReadySettlementIsExceptionSafeDuringFailTarget) {
    // Recovery disabled: the death is terminal and fail_target settles every
    // outstanding ticket with a synthetic target_failed result in one batch.
    // A throwing on_ready callback must be parked (rethrown from get()), not
    // escape the poll that happened to deliver it — the other future still
    // settles and its callback still fires.
    fault::injector::instance().kill_after_messages(1, 1);
    runtime_options opt;
    opt.backend = backend_kind::loopback;
    opt.reply_timeout_ns = 100'000;
    opt.max_retries = 2;
    run_guarded(opt, [] {
        auto f1 = async(1, ham::f2f<&add_one>(1.0));
        auto f2 = async(1, ham::f2f<&add_one>(2.0));
        f1.on_ready([] { throw std::runtime_error("callback boom"); });
        bool f2_fired = false;
        f2.on_ready([&] { f2_fired = true; });
        // The settling poll itself must not leak the callback exception.
        EXPECT_NO_THROW(static_cast<void>(f1.wait_for(10'000'000)));
        EXPECT_THROW(f1.get(), std::runtime_error);
        EXPECT_THROW(f2.get(), target_failed_error);
        EXPECT_TRUE(f2_fired);
    });
}

} // namespace
} // namespace ham::offload
