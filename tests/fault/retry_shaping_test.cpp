// Retry shaping tests (aurora::admit overload robustness): decorrelated
// jitter bounds and stream independence, and the per-target retry token
// bucket — suppressed retransmits are counted, paced, and never lose work.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "offload/offload.hpp"
#include "sim/platform.hpp"

namespace ham::offload {
namespace {

namespace fault = aurora::fault;
namespace sim = aurora::sim;

double add_one(double x) { return x + 1.0; }

runtime_options loopback_targets(std::size_t n) {
    runtime_options opt;
    opt.backend = backend_kind::loopback;
    opt.targets.assign(n, 0);
    return opt;
}

void run_guarded(const runtime_options& opt, const std::function<void()>& body) {
    sim::platform plat(sim::platform_config::test_machine());
    plat.sim().set_virtual_deadline(60'000'000'000);
    ASSERT_EQ(run(plat, opt, body), 0);
}

class RetryShaping : public ::testing::Test {
protected:
    void TearDown() override { fault::injector::instance().reset(); }
};

fault::config seeded(std::uint64_t seed) {
    fault::config c;
    c.enabled = true;
    c.seed = seed;
    return c;
}

/// A decorrelated-jitter walk: each draw feeds the next as prev_ns.
std::vector<std::int64_t> jitter_walk(fault::injector& inj, int n,
                                      std::int64_t base, std::int64_t cap) {
    std::vector<std::int64_t> seq;
    std::int64_t prev = base;
    for (int i = 0; i < n; ++i) {
        prev = inj.jitter_backoff(base, prev, cap);
        seq.push_back(prev);
    }
    return seq;
}

TEST_F(RetryShaping, JitterStaysWithinDecorrelatedBounds) {
    fault::injector& inj = fault::injector::instance();
    inj.configure(seeded(7));
    const std::int64_t base = 1'000;
    const std::int64_t cap = 50'000;
    std::int64_t prev = base;
    bool varied = false;
    std::int64_t last = -1;
    for (int i = 0; i < 500; ++i) {
        const std::int64_t hi =
            std::min<std::int64_t>(cap, std::max(base, prev) * 3);
        const std::int64_t draw = inj.jitter_backoff(base, prev, cap);
        EXPECT_GE(draw, base);
        EXPECT_LE(draw, hi);
        varied = varied || (last >= 0 && draw != last);
        last = draw;
        prev = draw;
    }
    EXPECT_TRUE(varied); // jitter, not a constant schedule
}

TEST_F(RetryShaping, JitterSameSeedSameSequence) {
    fault::injector& inj = fault::injector::instance();
    inj.configure(seeded(42));
    const auto a = jitter_walk(inj, 200, 1'000, 64'000);
    inj.configure(seeded(42));
    const auto b = jitter_walk(inj, 200, 1'000, 64'000);
    EXPECT_EQ(a, b);

    inj.configure(seeded(43));
    const auto c = jitter_walk(inj, 200, 1'000, 64'000);
    EXPECT_NE(a, c);
}

TEST_F(RetryShaping, JitterStreamIndependentOfFaultSchedule) {
    // Interleaving fault-schedule draws must not perturb the jitter stream
    // (and vice versa): the injector keeps two separate splitmix64 states.
    fault::injector& inj = fault::injector::instance();
    fault::config chaotic = seeded(42);
    chaotic.drop_permille = 200;
    chaotic.corrupt_permille = 100;

    inj.configure(chaotic);
    const auto pure = jitter_walk(inj, 100, 1'000, 64'000);

    inj.configure(chaotic);
    std::vector<std::int64_t> interleaved;
    std::vector<int> faults_a;
    std::int64_t prev = 1'000;
    for (int i = 0; i < 100; ++i) {
        faults_a.push_back(inj.should_drop() ? 1 : 0);
        prev = inj.jitter_backoff(1'000, prev, 64'000);
        interleaved.push_back(prev);
        faults_a.push_back(inj.should_corrupt() ? 1 : 0);
    }
    EXPECT_EQ(pure, interleaved);

    // And the fault schedule is what it would have been without jitter draws.
    inj.configure(chaotic);
    std::vector<int> faults_b;
    for (int i = 0; i < 100; ++i) {
        faults_b.push_back(inj.should_drop() ? 1 : 0);
        faults_b.push_back(inj.should_corrupt() ? 1 : 0);
    }
    EXPECT_EQ(faults_a, faults_b);
}

TEST_F(RetryShaping, RetryBudgetPacesRetransmitsWithoutLosingWork) {
    fault::config c = seeded(11);
    c.drop_permille = 180;
    fault::injector::instance().configure(c);

    namespace m = aurora::metrics;
    m::counter& suppressed = m::registry::global().counter_for(
        "aurora_offload_retries_suppressed_total",
        m::labels({{"backend", "loopback"}, {"node", "1"}}));
    const std::uint64_t before = suppressed.value();

    runtime_options opt = loopback_targets(1);
    opt.retry_budget = 1;                    // one token, then the bucket is dry
    opt.retry_budget_refill_ns = 50'000'000; // refills far slower than sweeps
    run_guarded(opt, [] {
        // Heavy drops force repeated reply-timeout retransmits; with a single
        // token the sweep must defer some of them — yet every offload still
        // completes with the right answer once tokens refill.
        for (int i = 0; i < 60; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(double(i))), double(i) + 1.0);
        }
        const auto rs = runtime::current()->runtime_stats(1);
        EXPECT_NE(rs.health, target_health::failed);
        EXPECT_GT(rs.retransmits, 0u);
    });
    EXPECT_GT(fault::injector::instance().stats().drops, 0u);
    EXPECT_GT(suppressed.value(), before)
        << "an empty token bucket must defer (and count) retransmits";
}

TEST_F(RetryShaping, JitterDisabledKeepsLegacyBackoffWorking) {
    fault::config c = seeded(5);
    c.drop_permille = 150;
    fault::injector::instance().configure(c);

    runtime_options opt = loopback_targets(1);
    opt.retry_jitter = false; // deterministic doubling, the legacy schedule
    run_guarded(opt, [] {
        for (int i = 0; i < 40; ++i) {
            EXPECT_EQ(sync(1, ham::f2f<&add_one>(41.0)), 42.0);
        }
        EXPECT_GT(runtime::current()->runtime_stats(1).retransmits, 0u);
    });
}

} // namespace
} // namespace ham::offload
