// aurora::fault injector unit tests: seeded determinism of the fault
// schedule, deterministic kill/attach schedules, env-knob parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fault/fault.hpp"
#include "sim/platform.hpp"
#include "tests/support/sim_fixture.hpp"

namespace aurora::fault {
namespace {

/// Every test leaves the process-wide injector disabled again.
class FaultInjector : public ::testing::Test {
protected:
    void TearDown() override { injector::instance().reset(); }
};

config chaos_cfg(std::uint64_t seed) {
    config c;
    c.enabled = true;
    c.seed = seed;
    c.drop_permille = 100;
    c.corrupt_permille = 150;
    c.flag_loss_permille = 50;
    c.dma_fail_permille = 80;
    c.delay_permille = 120;
    c.delay_ns = 1'000;
    return c;
}

/// One pass over every probabilistic draw; the sequence fingerprints the PRNG.
std::vector<int> draw_sequence(injector& inj, int n) {
    std::vector<int> seq;
    seq.reserve(static_cast<std::size_t>(n) * 5);
    for (int i = 0; i < n; ++i) {
        seq.push_back(inj.should_drop() ? 1 : 0);
        seq.push_back(inj.should_corrupt() ? 1 : 0);
        seq.push_back(inj.should_lose_flag() ? 1 : 0);
        seq.push_back(inj.should_fail_dma_post() ? 1 : 0);
        seq.push_back(inj.delay_spike() != 0 ? 1 : 0);
    }
    return seq;
}

TEST_F(FaultInjector, SameSeedSameSchedule) {
    injector& inj = injector::instance();
    inj.configure(chaos_cfg(42));
    const std::vector<int> a = draw_sequence(inj, 500);
    const counters ca = inj.stats();

    inj.configure(chaos_cfg(42));
    const std::vector<int> b = draw_sequence(inj, 500);
    const counters cb = inj.stats();

    EXPECT_EQ(a, b);
    EXPECT_EQ(ca, cb);
    // The schedule is non-trivial with these rates over 2500 draws.
    EXPECT_GT(ca.drops + ca.corruptions + ca.flag_losses + ca.dma_post_failures +
                  ca.delay_spikes,
              0u);
}

TEST_F(FaultInjector, DifferentSeedDifferentSchedule) {
    injector& inj = injector::instance();
    inj.configure(chaos_cfg(42));
    const std::vector<int> a = draw_sequence(inj, 500);
    inj.configure(chaos_cfg(43));
    const std::vector<int> b = draw_sequence(inj, 500);
    EXPECT_NE(a, b);
}

TEST_F(FaultInjector, DisabledNeverFires) {
    injector& inj = injector::instance();
    inj.reset();
    EXPECT_FALSE(inj.active());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.should_drop());
        EXPECT_FALSE(inj.should_corrupt());
        EXPECT_FALSE(inj.should_lose_flag());
        EXPECT_FALSE(inj.should_fail_dma_post());
        EXPECT_EQ(inj.delay_spike(), 0);
    }
    EXPECT_EQ(inj.stats(), counters{});
}

TEST_F(FaultInjector, CertainRateAlwaysFires) {
    injector& inj = injector::instance();
    config c;
    c.enabled = true;
    c.drop_permille = 1000;
    inj.configure(c);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(inj.should_drop());
    }
    EXPECT_EQ(inj.stats().drops, 50u);
}

TEST_F(FaultInjector, CorruptByteFlipsExactlyOneBit) {
    injector& inj = injector::instance();
    config c;
    c.enabled = true;
    c.seed = 7;
    inj.configure(c);
    std::vector<std::byte> buf(64, std::byte{0});
    inj.corrupt_byte(buf.data(), buf.size());
    int set_bits = 0;
    for (const std::byte b : buf) {
        for (int bit = 0; bit < 8; ++bit) {
            set_bits += static_cast<int>((std::to_integer<unsigned>(b) >> bit) & 1u);
        }
    }
    EXPECT_EQ(set_bits, 1);
}

TEST_F(FaultInjector, KillAfterMessagesFiresWhileHoldingNthMessage) {
    injector& inj = injector::instance();
    inj.kill_after_messages(1, 3);
    for (int m = 1; m <= 2; ++m) {
        inj.count_message(1);
        EXPECT_NO_THROW(inj.check_target_alive(1));
    }
    inj.count_message(1);
    EXPECT_THROW(inj.check_target_alive(1), target_killed);
    EXPECT_TRUE(inj.killed(1));
    EXPECT_EQ(inj.stats().kills, 1u);
    // Once dead, always dead — and the kill is counted only once.
    EXPECT_THROW(inj.check_target_alive(1), target_killed);
    EXPECT_EQ(inj.stats().kills, 1u);
    // Other nodes are unaffected.
    EXPECT_NO_THROW(inj.check_target_alive(2));
}

TEST_F(FaultInjector, KillAtTimeHonoursVirtualClock) {
    injector& inj = injector::instance();
    inj.kill_at_time(1, 5'000);
    sim::platform plat(sim::platform_config::test_machine());
    aurora::testing::run_as_vh(plat, [&] {
        EXPECT_NO_THROW(inj.check_target_alive(1));
        sim::advance(10'000);
        EXPECT_THROW(inj.check_target_alive(1), target_killed);
    });
}

TEST_F(FaultInjector, KillNowIsDueImmediately) {
    injector& inj = injector::instance();
    inj.kill_now(1);
    sim::platform plat(sim::platform_config::test_machine());
    aurora::testing::run_as_vh(plat, [&] {
        EXPECT_THROW(inj.check_target_alive(1), target_killed);
    });
}

TEST_F(FaultInjector, AttachFailureIsConsumedOnce) {
    injector& inj = injector::instance();
    EXPECT_FALSE(inj.take_attach_failure(1));
    inj.fail_next_attach(1);
    EXPECT_FALSE(inj.take_attach_failure(2));
    EXPECT_TRUE(inj.take_attach_failure(1));
    EXPECT_FALSE(inj.take_attach_failure(1));
    EXPECT_EQ(inj.stats().attach_failures, 1u);
}

TEST_F(FaultInjector, ConfigFromEnv) {
    ::setenv("HAM_AURORA_FAULT", "1", 1);
    ::setenv("HAM_AURORA_FAULT_SEED", "99", 1);
    ::setenv("HAM_AURORA_FAULT_DROP_PM", "25", 1);
    ::setenv("HAM_AURORA_FAULT_CORRUPT_PM", "2000", 1); // clamped to 1000
    ::setenv("HAM_AURORA_FAULT_DELAY_NS", "1234", 1);
    const config c = config::from_env();
    ::unsetenv("HAM_AURORA_FAULT");
    ::unsetenv("HAM_AURORA_FAULT_SEED");
    ::unsetenv("HAM_AURORA_FAULT_DROP_PM");
    ::unsetenv("HAM_AURORA_FAULT_CORRUPT_PM");
    ::unsetenv("HAM_AURORA_FAULT_DELAY_NS");
    EXPECT_TRUE(c.enabled);
    EXPECT_EQ(c.seed, 99u);
    EXPECT_EQ(c.drop_permille, 25u);
    EXPECT_EQ(c.corrupt_permille, 1000u);
    EXPECT_EQ(c.delay_ns, 1234);
    EXPECT_EQ(c.flag_loss_permille, 0u);
}

TEST_F(FaultInjector, ResetClearsEverything) {
    injector& inj = injector::instance();
    inj.configure(chaos_cfg(5));
    inj.kill_after_messages(1, 1);
    (void)draw_sequence(inj, 100);
    inj.reset();
    EXPECT_FALSE(inj.active());
    EXPECT_EQ(inj.stats(), counters{});
    EXPECT_FALSE(inj.killed(1));
    inj.count_message(1);
    EXPECT_NO_THROW(inj.check_target_alive(1));
}

} // namespace
} // namespace aurora::fault
