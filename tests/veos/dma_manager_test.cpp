// Tests of the privileged DMA manager: functional correctness plus the cost
// structure the paper attributes to it (translation on the fly, 4dma overlap,
// huge-page sensitivity).
#include "veos/dma_manager.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/units.hpp"

namespace aurora::veos {
namespace {

using testing::aurora_fixture;
using sim::page_size;

TEST(DmaManager, WriteReadRoundTripThroughVeMemory) {
    aurora_fixture fx;
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        dma_manager& dma = fx.sys.daemon(0).dma();
        const std::uint64_t va = proc.ve_alloc(1 * MiB);

        std::vector<std::uint8_t> src(128 * KiB);
        std::iota(src.begin(), src.end(), 0);
        dma.write_to_ve(proc, va + 64, src.data(), src.size(), 0);

        std::vector<std::uint8_t> dst(src.size(), 0);
        dma.read_from_ve(proc, va + 64, dst.data(), dst.size(), 0);
        EXPECT_EQ(src, dst);
        EXPECT_EQ(dma.transfer_count(), 2u);
        EXPECT_EQ(dma.bytes_moved(), 2 * src.size());
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(DmaManager, TransfersAdvanceVirtualTime) {
    aurora_fixture fx;
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        dma_manager& dma = fx.sys.daemon(0).dma();
        const std::uint64_t va = proc.ve_alloc(4096);
        std::uint64_t v = 1;
        const sim::time_ns before = sim::now();
        dma.write_to_ve(proc, va, &v, sizeof(v), 0);
        const sim::time_ns elapsed = sim::now() - before;
        // Small transfers are dominated by the fixed base cost (~100 us).
        EXPECT_GT(elapsed, 90'000);
        EXPECT_LT(elapsed, 130'000);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(DmaManager, UnmappedVeAddressFaults) {
    aurora_fixture fx;
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        dma_manager& dma = fx.sys.daemon(0).dma();
        std::uint64_t v = 1;
        EXPECT_THROW(dma.write_to_ve(proc, 0xdead000, &v, sizeof(v), 0),
                     check_error);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(DmaManager, ZeroLengthIsFree) {
    aurora_fixture fx;
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        dma_manager& dma = fx.sys.daemon(0).dma();
        const std::uint64_t va = proc.ve_alloc(64);
        const sim::time_ns before = sim::now();
        dma.write_to_ve(proc, va, nullptr, 0, 0);
        EXPECT_EQ(sim::now(), before);
        EXPECT_EQ(dma.transfer_count(), 0u);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

class DmaCost : public ::testing::Test {
protected:
    sim::platform plat_{sim::platform_config::test_machine()};

    sim::duration_ns cost(std::uint64_t n, bool to_ve, page_size vh, page_size ve,
                          sim::dma_manager_mode mode, int socket = 0) {
        dma_manager dma(plat_, 0, mode);
        return dma.transfer_cost(n, to_ve, vh, ve, socket);
    }
};

TEST_F(DmaCost, ImprovedManagerBeatsClassicForLargeTransfers) {
    // VEOS 1.3.2-4dma overlaps translation with the transfer (Sec. III-D).
    const auto classic = cost(64 * MiB, true, page_size::small_4k,
                              page_size::huge_64m, sim::dma_manager_mode::classic);
    const auto improved =
        cost(64 * MiB, true, page_size::small_4k, page_size::huge_64m,
             sim::dma_manager_mode::improved_4dma);
    EXPECT_GT(classic, improved);
    // With 4 KiB pages the serialised translation costs ~50% extra.
    EXPECT_GT(double(classic) / double(improved), 1.4);
}

TEST_F(DmaCost, HugePagesMatterForBandwidth) {
    // "it is important to use huge pages of at least 2 MiB" (Sec. V-B).
    const auto small = cost(256 * MiB, true, page_size::small_4k,
                            page_size::huge_64m, sim::dma_manager_mode::improved_4dma);
    const auto huge = cost(256 * MiB, true, page_size::huge_2m,
                           page_size::huge_64m, sim::dma_manager_mode::improved_4dma);
    const double bw_small = double(256 * MiB) / double(small);
    const double bw_huge = double(256 * MiB) / double(huge);
    EXPECT_GT(bw_huge, 1.5 * bw_small);
}

TEST_F(DmaCost, HugePageBandwidthReachesPaperPlateau) {
    // Table IV: 9.9 GiB/s VH=>VE with huge pages and the improved manager.
    const auto t = cost(256 * MiB, true, page_size::huge_2m, page_size::huge_64m,
                        sim::dma_manager_mode::improved_4dma);
    const double gib_s = bandwidth_gib_s(256 * MiB, t);
    EXPECT_NEAR(gib_s, 9.9, 0.2);
}

TEST_F(DmaCost, ReadDirectionSlightlyFaster) {
    // Table IV: VE=>VH 10.4 vs VH=>VE 9.9 GiB/s.
    const auto w = cost(256 * MiB, true, page_size::huge_2m, page_size::huge_64m,
                        sim::dma_manager_mode::improved_4dma);
    const auto r = cost(256 * MiB, false, page_size::huge_2m, page_size::huge_64m,
                        sim::dma_manager_mode::improved_4dma);
    EXPECT_LT(r, w);
    EXPECT_NEAR(bandwidth_gib_s(256 * MiB, r), 10.4, 0.2);
}

TEST_F(DmaCost, CostMonotoneInSize) {
    sim::duration_ns prev = 0;
    for (std::uint64_t n = 8; n <= 256 * MiB; n *= 4) {
        const auto t = cost(n, true, page_size::huge_2m, page_size::huge_64m,
                            sim::dma_manager_mode::improved_4dma);
        EXPECT_GE(t, prev) << n;
        prev = t;
    }
}

TEST_F(DmaCost, SmallTransferDominatedByBase) {
    const auto t = cost(8, true, page_size::huge_2m, page_size::ve_64k,
                        sim::dma_manager_mode::improved_4dma);
    const auto& cm = plat_.costs();
    EXPECT_GE(t, cm.veo_write_base_ns);
    EXPECT_LT(t, cm.veo_write_base_ns + 20'000);
}

} // namespace
} // namespace aurora::veos
