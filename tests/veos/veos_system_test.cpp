#include "veos/veos.hpp"

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"

namespace aurora::veos {
namespace {

using testing::aurora_fixture;

TEST(VeosSystem, OneDaemonPerVe) {
    sim::platform plat(sim::platform_config::a300_8());
    veos_system sys(plat);
    EXPECT_EQ(sys.num_ve(), 8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(sys.daemon(i).ve_id(), i);
    }
    EXPECT_THROW((void)sys.daemon(8), check_error);
}

TEST(VeosSystem, ImageRepository) {
    aurora_fixture fx;
    program_image img("libapp.so");
    fx.sys.install_image(img);
    EXPECT_EQ(fx.sys.find_image("libapp.so"), &img);
    EXPECT_EQ(fx.sys.find_image("other.so"), nullptr);
    EXPECT_THROW(fx.sys.install_image(img), check_error);
}

TEST(VeosSystem, ProcessLifecycle) {
    aurora_fixture fx;
    fx.run([&] {
        veos_daemon& d = fx.sys.daemon(0);
        EXPECT_EQ(d.live_process_count(), 0u);
        ve_process& p1 = d.create_process();
        ve_process& p2 = d.create_process();
        EXPECT_EQ(d.live_process_count(), 2u);
        EXPECT_NE(p1.pid(), p2.pid());
        d.destroy_process(p1);
        EXPECT_EQ(d.live_process_count(), 1u);
        d.destroy_process(p2);
        EXPECT_EQ(d.live_process_count(), 0u);
        EXPECT_THROW(d.destroy_process(p2), check_error);
    });
}

TEST(VeosSystem, QuitDrainsQueuedCallsFirst) {
    aurora_fixture fx;
    program_image img("libdrain.so");
    int executed = 0;
    img.add_symbol("count", [&executed](ve_call_context&) -> std::uint64_t {
        return std::uint64_t(++executed);
    });
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        const std::uint64_t sym =
            proc.resolve_symbol(proc.load_library(img), "count");
        for (int i = 0; i < 3; ++i) {
            ve_command cmd;
            cmd.req_id = proc.next_req_id();
            cmd.sym = sym;
            proc.queue().push(cmd);
        }
        // destroy queues the quit command behind the three calls.
        fx.sys.daemon(0).destroy_process(proc);
        EXPECT_EQ(executed, 3);
    });
}

TEST(VeosSystem, DaemonsAreIndependent) {
    sim::platform plat(sim::platform_config::a300_8());
    veos_system sys(plat);
    testing::run_as_vh(plat, [&] {
        ve_process& a = sys.daemon(0).create_process();
        ve_process& b = sys.daemon(3).create_process();
        const std::uint64_t va = a.ve_alloc(4096);
        const std::uint64_t vb = b.ve_alloc(4096);
        a.mem().store_u64(va, 111);
        b.mem().store_u64(vb, 222);
        EXPECT_EQ(a.mem().load_u64(va), 111u);
        EXPECT_EQ(b.mem().load_u64(vb), 222u);
        sys.daemon(0).destroy_process(a);
        sys.daemon(3).destroy_process(b);
    });
}

} // namespace
} // namespace aurora::veos
