// VEOS scheduling duties: VE core reservations (paper Sec. I-B: the veos
// daemon "takes care of memory and process management, scheduling, and DMA").
#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"

namespace aurora::veos {
namespace {

using testing::aurora_fixture;

TEST(Scheduling, ReservationAccounting) {
    aurora_fixture fx; // test machine: 8-core VE
    fx.run([&] {
        veos_daemon& d = fx.sys.daemon(0);
        EXPECT_EQ(d.reserved_cores(), 0);
        ve_process& a = d.create_process(4);
        EXPECT_EQ(a.reserved_cores(), 4);
        EXPECT_EQ(d.reserved_cores(), 4);
        ve_process& b = d.create_process(4);
        EXPECT_EQ(d.reserved_cores(), 8);
        d.destroy_process(a);
        EXPECT_EQ(d.reserved_cores(), 4);
        d.destroy_process(b);
        EXPECT_EQ(d.reserved_cores(), 0);
    });
}

TEST(Scheduling, OverSubscriptionRejected) {
    aurora_fixture fx;
    fx.run([&] {
        veos_daemon& d = fx.sys.daemon(0);
        ve_process& a = d.create_process(6);
        EXPECT_THROW((void)d.create_process(3), check_error);
        EXPECT_THROW((void)d.create_process(-1), check_error);
        // Exactly filling the device works.
        ve_process& b = d.create_process(2);
        d.destroy_process(a);
        d.destroy_process(b);
    });
}

TEST(Scheduling, TimeSharedProcessesUnlimited) {
    aurora_fixture fx;
    fx.run([&] {
        veos_daemon& d = fx.sys.daemon(0);
        std::vector<ve_process*> procs;
        for (int i = 0; i < 12; ++i) {
            procs.push_back(&d.create_process()); // cores = 0: time-shared
        }
        EXPECT_EQ(d.reserved_cores(), 0);
        EXPECT_EQ(d.live_process_count(), 12u);
        for (auto* p : procs) {
            d.destroy_process(*p);
        }
    });
}

TEST(Scheduling, ReservationsIndependentPerVe) {
    sim::platform plat(sim::platform_config::a300_8());
    veos_system sys(plat);
    testing::run_as_vh(plat, [&] {
        ve_process& a = sys.daemon(0).create_process(8);
        // A full reservation on VE0 does not constrain VE1.
        ve_process& b = sys.daemon(1).create_process(8);
        EXPECT_EQ(sys.daemon(0).reserved_cores(), 8);
        EXPECT_EQ(sys.daemon(1).reserved_cores(), 8);
        sys.daemon(0).destroy_process(a);
        sys.daemon(1).destroy_process(b);
    });
}

} // namespace
} // namespace aurora::veos
