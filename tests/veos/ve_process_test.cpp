#include "veos/ve_process.hpp"

#include <cstring>

#include <gtest/gtest.h>

#include "support/sim_fixture.hpp"
#include "util/check.hpp"
#include "util/units.hpp"
#include "veos/veos.hpp"

namespace aurora::veos {
namespace {

using testing::aurora_fixture;

TEST(VeProcess, AllocFreeRoundTrip) {
    aurora_fixture fx;
    ve_process proc(fx.sys.daemon(0), fx.plat, 0, 1);
    const std::uint64_t va = proc.ve_alloc(4096);
    EXPECT_NE(va, 0u);
    EXPECT_GE(proc.bytes_allocated(), 4096u);
    proc.mem().store_u64(va, 0xABCD);
    EXPECT_EQ(proc.mem().load_u64(va), 0xABCDu);
    proc.ve_free(va);
    EXPECT_EQ(proc.bytes_allocated(), 0u);
}

TEST(VeProcess, AllocationsArePageAligned) {
    aurora_fixture fx;
    ve_process proc(fx.sys.daemon(0), fx.plat, 0, 1);
    const std::uint64_t va = proc.ve_alloc(100, sim::page_size::huge_2m);
    EXPECT_EQ(va % (2 * MiB), 0u);
    const sim::vm_mapping* m = proc.aspace().find(va);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->pages, sim::page_size::huge_2m);
    EXPECT_EQ(m->length, 2 * MiB); // padded to page granularity
}

TEST(VeProcess, OutOfMemoryThrows) {
    aurora_fixture fx; // test machine: 1 GiB HBM
    ve_process proc(fx.sys.daemon(0), fx.plat, 0, 1);
    EXPECT_THROW((void)proc.ve_alloc(2 * GiB), check_error);
}

TEST(VeProcess, ZeroAllocThrows) {
    aurora_fixture fx;
    ve_process proc(fx.sys.daemon(0), fx.plat, 0, 1);
    EXPECT_THROW((void)proc.ve_alloc(0), check_error);
}

TEST(VeProcess, AccessOutsideMappingFaults) {
    aurora_fixture fx;
    ve_process proc(fx.sys.daemon(0), fx.plat, 0, 1);
    const std::uint64_t va = proc.ve_alloc(64 * KiB);
    EXPECT_THROW((void)proc.mem().load_u64(va + 64 * KiB), check_error);
    EXPECT_THROW((void)proc.mem().load_u64(0x1234), check_error);
}

TEST(VeProcess, LibraryAndSymbolResolution) {
    aurora_fixture fx;
    program_image img("libtest.so");
    img.add_symbol("fn_a", [](ve_call_context&) -> std::uint64_t { return 7; });
    img.add_symbol("fn_b", [](ve_call_context&) -> std::uint64_t { return 8; });

    ve_process proc(fx.sys.daemon(0), fx.plat, 0, 1);
    const std::uint64_t lib = proc.load_library(img);
    EXPECT_NE(lib, 0u);
    EXPECT_EQ(proc.library(lib), &img);
    EXPECT_EQ(proc.library(99), nullptr);

    const std::uint64_t sym = proc.resolve_symbol(lib, "fn_a");
    EXPECT_NE(sym, 0u);
    EXPECT_EQ(proc.resolve_symbol(lib, "nope"), 0u);
    EXPECT_EQ(proc.resolve_symbol(42, "fn_a"), 0u);
    EXPECT_NE(proc.function_for(sym), nullptr);
    EXPECT_EQ(proc.function_for(0), nullptr);
}

TEST(VeProcess, DuplicateSymbolInImageThrows) {
    program_image img("libdup.so");
    img.add_symbol("x", [](ve_call_context&) -> std::uint64_t { return 0; });
    EXPECT_THROW(
        img.add_symbol("x", [](ve_call_context&) -> std::uint64_t { return 1; }),
        check_error);
}

TEST(VeProcess, RequestLoopExecutesCalls) {
    aurora_fixture fx;
    program_image img("libcalls.so");
    img.add_symbol("add", [](ve_call_context& ctx) -> std::uint64_t {
        return ctx.arg_u64(0) + ctx.arg_u64(1);
    });

    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        const std::uint64_t lib = proc.load_library(img);
        const std::uint64_t sym = proc.resolve_symbol(lib, "add");

        ve_command cmd;
        cmd.req_id = proc.next_req_id();
        cmd.sym = sym;
        cmd.regs = {40, 2};
        proc.queue().push(cmd);

        const ve_completion done = proc.wait_completion(cmd.req_id);
        EXPECT_FALSE(done.exception);
        EXPECT_EQ(done.retval, 42u);

        fx.sys.daemon(0).destroy_process(proc);
        EXPECT_TRUE(proc.exited());
    });
}

TEST(VeProcess, UnknownSymbolCallCompletesWithException) {
    aurora_fixture fx;
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        ve_command cmd;
        cmd.req_id = proc.next_req_id();
        cmd.sym = 12345;
        proc.queue().push(cmd);
        const ve_completion done = proc.wait_completion(cmd.req_id);
        EXPECT_TRUE(done.exception);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(VeProcess, ThrowingVeFunctionReportsException) {
    aurora_fixture fx;
    program_image img("libthrow.so");
    img.add_symbol("bad", [](ve_call_context&) -> std::uint64_t {
        throw std::runtime_error("ve fault");
    });
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        const std::uint64_t sym =
            proc.resolve_symbol(proc.load_library(img), "bad");
        ve_command cmd;
        cmd.req_id = proc.next_req_id();
        cmd.sym = sym;
        proc.queue().push(cmd);
        EXPECT_TRUE(proc.wait_completion(cmd.req_id).exception);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(VeProcess, StackArgumentsCopyInAndOut) {
    aurora_fixture fx;
    program_image img("libstack.so");
    img.add_symbol("double_all", [](ve_call_context& ctx) -> std::uint64_t {
        const std::uint64_t addr = ctx.arg_u64(0);
        const std::uint64_t n = ctx.arg_u64(1);
        std::vector<std::int64_t> v(n);
        ctx.proc().mem().read(addr, v.data(), n * 8);
        for (auto& x : v) x *= 2;
        ctx.proc().mem().write(addr, v.data(), n * 8);
        return 0;
    });
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        const std::uint64_t sym =
            proc.resolve_symbol(proc.load_library(img), "double_all");

        std::vector<std::int64_t> data{1, 2, 3};
        ve_command cmd;
        cmd.req_id = proc.next_req_id();
        cmd.sym = sym;
        cmd.regs = {0, 3};
        stack_arg sa;
        sa.reg_index = 0;
        sa.intent = stack_intent::inout;
        sa.bytes.resize(24);
        std::memcpy(sa.bytes.data(), data.data(), 24);
        cmd.stack_args.push_back(sa);
        proc.queue().push(cmd);

        const ve_completion done = proc.wait_completion(cmd.req_id);
        ASSERT_EQ(done.returned_stack.size(), 1u);
        std::memcpy(data.data(), done.returned_stack[0].bytes.data(), 24);
        EXPECT_EQ(data, (std::vector<std::int64_t>{2, 4, 6}));
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(VeProcess, VhcallInvokesRegisteredHandler) {
    aurora_fixture fx;
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        int called = 0;
        proc.register_vhcall("host_fn",
                             [&](const std::vector<std::byte>& in,
                                 std::vector<std::byte>& out) -> std::uint64_t {
                                 ++called;
                                 out = in;
                                 return 77;
                             });
        // Invoke from the VE side through a command.
        program_image img("libvh.so");
        img.add_symbol("calls_vh", [](ve_call_context& ctx) -> std::uint64_t {
            std::vector<std::byte> in(4, std::byte{1});
            std::vector<std::byte> out;
            return ctx.proc().vhcall("host_fn", in, out) + out.size();
        });
        const std::uint64_t sym =
            proc.resolve_symbol(proc.load_library(img), "calls_vh");
        ve_command cmd;
        cmd.req_id = proc.next_req_id();
        cmd.sym = sym;
        proc.queue().push(cmd);
        EXPECT_EQ(proc.wait_completion(cmd.req_id).retval, 81u);
        EXPECT_EQ(called, 1);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(VeProcess, VhcallUnknownHandlerThrows) {
    aurora_fixture fx;
    fx.run([&] {
        ve_process& proc = fx.sys.daemon(0).create_process();
        program_image img("libvh2.so");
        img.add_symbol("bad_vh", [](ve_call_context& ctx) -> std::uint64_t {
            std::vector<std::byte> out;
            return ctx.proc().vhcall("missing", {}, out);
        });
        const std::uint64_t sym =
            proc.resolve_symbol(proc.load_library(img), "bad_vh");
        ve_command cmd;
        cmd.req_id = proc.next_req_id();
        cmd.sym = sym;
        proc.queue().push(cmd);
        // The AURORA_CHECK inside vhcall surfaces as a VE-side exception.
        EXPECT_TRUE(proc.wait_completion(cmd.req_id).exception);
        fx.sys.daemon(0).destroy_process(proc);
    });
}

TEST(VeProcess, DuplicateVhcallRegistrationThrows) {
    aurora_fixture fx;
    ve_process proc(fx.sys.daemon(0), fx.plat, 0, 1);
    auto h = [](const std::vector<std::byte>&,
                std::vector<std::byte>&) -> std::uint64_t { return 0; };
    proc.register_vhcall("h", h);
    EXPECT_THROW(proc.register_vhcall("h", h), check_error);
}

} // namespace
} // namespace aurora::veos
