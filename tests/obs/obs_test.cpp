// aurora::obs unit tests: flight-ring wrap-around under concurrent emitters,
// lifecycle correlation keys, timeline reassembly (VE join, overflow
// accounting), and the postmortem JSON shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "trace/trace.hpp"

namespace aurora::obs {
namespace {

TEST(PackRef, RoundTrip) {
    const std::uint64_t r = pack_ref(0xBEEF, 0x1234, 0xAB, stage::harvest);
    EXPECT_EQ(ref_node(r), 0xBEEF);
    EXPECT_EQ(ref_slot(r), 0x1234);
    EXPECT_EQ(ref_epoch(r), 0xAB);
    EXPECT_EQ(ref_stage(r), stage::harvest);
}

TEST(PackRef, StagesDoNotAlias) {
    std::set<std::uint64_t> refs;
    for (const stage s :
         {stage::submit, stage::post, stage::sent, stage::ve_dispatch,
          stage::ve_done, stage::harvest, stage::collect, stage::failed,
          stage::ctx, stage::net_route, stage::net_result}) {
        EXPECT_TRUE(refs.insert(pack_ref(1, 2, 3, s)).second)
            << "stage " << to_string(s) << " aliases another";
    }
}

TEST(TraceContext, WidenInvertsTruncation) {
    const trace_context none;
    EXPECT_FALSE(none.valid());
    EXPECT_EQ(widen_trace_id(0, 5), 0u); // absent stays absent
    const std::uint64_t full = (std::uint64_t{3 + 1} << 32) | 0xC0FFEEu;
    EXPECT_EQ(widen_trace_id(0xC0FFEE, 3), full);
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRing, RecordsUntilCapacityThenDrops) {
    flight_ring ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (std::uint64_t t = 1; t <= 6; ++t) {
        ring.note(stage::post, t, std::uint16_t(t), 0, 0);
    }
    EXPECT_EQ(ring.pushed(), 6u);
    EXPECT_EQ(ring.dropped(), 2u);
    const auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Oldest first; the two earliest events were overwritten.
    EXPECT_EQ(snap.front().ticket, 3u);
    EXPECT_EQ(snap.back().ticket, 6u);
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_LT(snap[i - 1].seq, snap[i].seq);
    }
}

TEST(FlightRing, WrapAroundUnderConcurrentEmitters) {
    // Several emitters (runtime, backend, gateway) may note into one target's
    // ring concurrently. The ring must never tear a record: every snapshot
    // entry is either skipped or fully consistent, and the per-event sequence
    // numbers stay unique and within the live window.
    constexpr int threads = 4;
    constexpr int per_thread = 500;
    constexpr std::uint32_t cap = 64;
    flight_ring ring(cap);
    std::vector<std::thread> emitters;
    emitters.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        emitters.emplace_back([&ring, t] {
            for (int i = 0; i < per_thread; ++i) {
                // Encode the writer in slot and the iteration in ticket so a
                // torn record would show as a mismatched pair.
                ring.note(stage::sent, std::uint64_t(i),
                          std::uint16_t(t), std::uint8_t(t),
                          std::uint32_t(i) ^ 0x5A5A5A5Au);
            }
        });
    }
    for (std::thread& th : emitters) {
        th.join();
    }
    EXPECT_EQ(ring.pushed(), std::uint64_t(threads) * per_thread);
    EXPECT_EQ(ring.dropped(), std::uint64_t(threads) * per_thread - cap);

    const auto snap = ring.snapshot();
    EXPECT_LE(snap.size(), std::size_t(cap));
    EXPECT_FALSE(snap.empty());
    std::set<std::uint64_t> seqs;
    for (const flight_ring::record& r : snap) {
        EXPECT_TRUE(seqs.insert(r.seq).second) << "duplicate seq " << r.seq;
        EXPECT_GE(r.seq, ring.pushed() - cap + 1);
        EXPECT_LE(r.seq, ring.pushed());
        EXPECT_EQ(r.st, stage::sent);
        EXPECT_LT(r.slot, threads);
        EXPECT_EQ(r.epoch, std::uint8_t(r.slot)); // writer tag must match
        EXPECT_EQ(r.info, std::uint32_t(r.ticket) ^ 0x5A5A5A5Au)
            << "torn record: ticket/info written by different notes";
    }
    // Snapshot is oldest-first.
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_LT(snap[i - 1].seq, snap[i].seq);
    }
}

TEST(FlightRegistry, RingsAreSharedAndEnumerable) {
    flight_registry::reset();
    flight_ring& a = flight_registry::ring_for(11);
    flight_ring& b = flight_registry::ring_for(11);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(flight_registry::find(12), nullptr);
    flight_registry::ring_for(12).note(stage::post, 1, 0, 0);
    const auto nodes = flight_registry::nodes();
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0], 11);
    EXPECT_EQ(nodes[1], 12);
    flight_registry::reset();
    EXPECT_TRUE(flight_registry::nodes().empty());
}

TEST(Postmortem, JsonCarriesPartialRequestTimelines) {
    flight_registry::reset();
    flight_ring& ring = flight_registry::ring_for(2);
    ring.note(stage::post, 7, 3, 1, 16);
    ring.note(stage::sent, 0, 3, 1, 16);
    ring.note(stage::failed, 7, 3, 1, 0);
    const std::string json = postmortem_json(2, "target_failed", 1, "ve died");
    EXPECT_NE(json.find("\"node\":2"), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"target_failed\""), std::string::npos);
    EXPECT_NE(json.find("\"reason\":\"ve died\""), std::string::npos);
    EXPECT_NE(json.find("\"ticket\":7"), std::string::npos);
    EXPECT_NE(json.find("\"stage\":\"failed\""), std::string::npos);
    flight_registry::reset();
}

// --- timeline reassembly -----------------------------------------------------

trace::event lifecycle(stage s, std::uint16_t node, std::uint64_t ticket,
                       std::uint16_t slot, std::uint8_t epoch,
                       std::uint64_t ts) {
    trace::event e;
    e.cat = "obs";
    e.name = to_string(s);
    e.ts_ns = ts;
    e.value = ticket;
    e.ref = pack_ref(node, slot, epoch, s);
    e.type = trace::event_type::lifecycle;
    return e;
}

trace::collector::lane_snapshot lane_of(std::vector<trace::event> events,
                                        std::uint64_t dropped = 0) {
    trace::collector::lane_snapshot l;
    l.name = "test-lane";
    l.events = std::move(events);
    l.dropped = dropped;
    return l;
}

TEST(Reassemble, CompleteTimelineTelescopesExactly) {
    // Host lane knows the ticket; the VE lane only knows (node, slot, epoch).
    const auto host = lane_of({
        lifecycle(stage::submit, 1, 9, 0, 0, 100),
        lifecycle(stage::post, 1, 9, 0, 0, 150),
        lifecycle(stage::sent, 1, 9, 0, 0, 250),
        lifecycle(stage::harvest, 1, 9, 0, 0, 1000),
        lifecycle(stage::collect, 1, 9, 0, 0, 1100),
    });
    const auto ve = lane_of({
        lifecycle(stage::ve_dispatch, 1, 0, 0, 0, 400),
        lifecycle(stage::ve_done, 1, 0, 0, 0, 900),
    });
    const reassembly r = reassemble({host, ve});
    ASSERT_EQ(r.timelines.size(), 1u);
    const timeline& tl = r.timelines.front();
    EXPECT_EQ(tl.node, 1);
    EXPECT_EQ(tl.ticket, 9u);
    EXPECT_TRUE(tl.complete);
    EXPECT_FALSE(tl.failed);
    EXPECT_FALSE(tl.lossy);
    EXPECT_EQ(tl.roundtrip_ns, 850u); // post..harvest
    EXPECT_EQ(tl.stage_ns[std::uint8_t(stage::post)], 50u);         // queue_wait
    EXPECT_EQ(tl.stage_ns[std::uint8_t(stage::sent)], 100u);        // send
    EXPECT_EQ(tl.stage_ns[std::uint8_t(stage::ve_dispatch)], 150u); // flag_poll
    EXPECT_EQ(tl.stage_ns[std::uint8_t(stage::ve_done)], 500u);     // execute
    EXPECT_EQ(tl.stage_ns[std::uint8_t(stage::harvest)], 100u);     // result
    EXPECT_EQ(tl.stage_ns[std::uint8_t(stage::collect)], 100u);     // settle
    // The attribution contract: inner edges sum to the roundtrip exactly.
    EXPECT_EQ(tl.stage_ns[std::uint8_t(stage::sent)] +
                  tl.stage_ns[std::uint8_t(stage::ve_dispatch)] +
                  tl.stage_ns[std::uint8_t(stage::ve_done)] +
                  tl.stage_ns[std::uint8_t(stage::harvest)],
              tl.roundtrip_ns);
    EXPECT_EQ(r.dropped_events, 0u);
}

TEST(Reassemble, VeEventsJoinTheLatestPrecedingPostOnTheirSlot) {
    // Two requests reuse slot 0 back to back; each VE event must join the
    // post that owned the slot at that virtual time, never a later one.
    const auto host = lane_of({
        lifecycle(stage::post, 1, 1, 0, 0, 100),
        lifecycle(stage::sent, 1, 1, 0, 0, 110),
        lifecycle(stage::harvest, 1, 1, 0, 0, 500),
        lifecycle(stage::post, 1, 2, 0, 0, 600),
        lifecycle(stage::sent, 1, 2, 0, 0, 610),
        lifecycle(stage::harvest, 1, 2, 0, 0, 900),
    });
    const auto ve = lane_of({
        lifecycle(stage::ve_dispatch, 1, 0, 0, 0, 200),
        lifecycle(stage::ve_done, 1, 0, 0, 0, 400),
        lifecycle(stage::ve_dispatch, 1, 0, 0, 0, 700),
        lifecycle(stage::ve_done, 1, 0, 0, 0, 800),
    });
    const reassembly r = reassemble({host, ve});
    ASSERT_EQ(r.timelines.size(), 2u);
    EXPECT_EQ(r.timelines[0].ticket, 1u);
    EXPECT_TRUE(r.timelines[0].complete);
    EXPECT_EQ(r.timelines[0].stage_ns[std::uint8_t(stage::ve_done)], 200u);
    EXPECT_EQ(r.timelines[1].ticket, 2u);
    EXPECT_TRUE(r.timelines[1].complete);
    EXPECT_EQ(r.timelines[1].stage_ns[std::uint8_t(stage::ve_done)], 100u);
}

TEST(Reassemble, EpochMismatchNeverJoinsAcrossIncarnations) {
    const auto host = lane_of({
        lifecycle(stage::post, 1, 1, 0, /*epoch=*/0, 100),
        lifecycle(stage::sent, 1, 1, 0, 0, 110),
        lifecycle(stage::harvest, 1, 1, 0, 0, 500),
    });
    // A respawned target (epoch 1) reports on the same slot: stale data that
    // must not masquerade as execution of the epoch-0 request.
    const auto ve = lane_of({
        lifecycle(stage::ve_dispatch, 1, 0, 0, /*epoch=*/1, 200),
        lifecycle(stage::ve_done, 1, 0, 0, 1, 400),
    });
    const reassembly r = reassemble({host, ve});
    ASSERT_EQ(r.timelines.size(), 1u);
    EXPECT_FALSE(r.timelines.front().complete);
    EXPECT_EQ(r.timelines.front().stage_ns[std::uint8_t(stage::ve_done)], 0u);
}

TEST(Reassemble, LaneOverflowMarksTimelinesLossyAndCountsDrops) {
    // Push lifecycle events through a real ring that is too small: the
    // surviving suffix must still reassemble, flagged lossy, with the drop
    // count surfaced (the "dropped_events" marker in the JSON and the
    // aurora_trace_query summary line).
    trace::ring_buffer buf(8);
    for (std::uint64_t t = 1; t <= 6; ++t) {
        buf.push(lifecycle(stage::post, 1, t, std::uint16_t(t), 0, t * 100));
        buf.push(lifecycle(stage::sent, 1, t, std::uint16_t(t), 0, t * 100 + 10));
        buf.push(
            lifecycle(stage::harvest, 1, t, std::uint16_t(t), 0, t * 100 + 50));
    }
    ASSERT_GT(buf.dropped(), 0u);
    trace::collector::lane_snapshot l;
    l.name = "overflowed";
    l.events = buf.snapshot();
    l.dropped = buf.dropped();
    const reassembly r = reassemble({l});
    EXPECT_EQ(r.dropped_events, buf.dropped());
    ASSERT_FALSE(r.timelines.empty());
    for (const timeline& tl : r.timelines) {
        EXPECT_TRUE(tl.lossy) << "ticket " << tl.ticket;
        // No spine (ve events never recorded) => never reported complete.
        EXPECT_FALSE(tl.complete);
    }
    // A lane with drops but no lifecycle events must not inflate the count.
    trace::collector::lane_snapshot unrelated;
    unrelated.name = "spans-only";
    unrelated.dropped = 1000;
    const reassembly r2 = reassemble({l, unrelated});
    EXPECT_EQ(r2.dropped_events, buf.dropped());
}

TEST(Reassemble, CtxBindsTraceIdAndFailureSettles) {
    const std::uint64_t trace_id = widen_trace_id(0xC0DE, 0);
    trace::event ctx;
    ctx.cat = "obs";
    ctx.name = "ctx";
    ctx.ts_ns = 90;
    ctx.value = 5;                 // ticket
    ctx.dur_ns = trace_id;         // full trace id
    ctx.ref = pack_ref(1, /*parent span rides the slot field=*/77, 0,
                       stage::ctx);
    ctx.type = trace::event_type::lifecycle;
    const auto host = lane_of({
        ctx,
        lifecycle(stage::post, 1, 5, 0, 0, 100),
        lifecycle(stage::failed, 1, 5, 0, 0, 900),
    });
    const reassembly r = reassemble({host});
    ASSERT_EQ(r.timelines.size(), 1u);
    const timeline& tl = r.timelines.front();
    EXPECT_EQ(tl.trace_id, trace_id);
    EXPECT_EQ(tl.parent_span, 77);
    EXPECT_TRUE(tl.failed);
    EXPECT_FALSE(tl.complete);
    const std::string json = timelines_json(r);
    EXPECT_NE(json.find("\"failed\":true"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

// --- gating ------------------------------------------------------------------

TEST(ObsGate, EmitNowRespectsTheSwitch) {
    trace::set_enabled(true);
    trace::collector::instance().reset();
    set_enabled(true);
    emit_now(stage::post, 1, 1, 0, 0);
    set_enabled(false);
    emit_now(stage::sent, 1, 1, 0, 0); // must be a no-op
    std::size_t lifecycle_events = 0;
    for (const auto& l : trace::collector::instance().snapshot()) {
        for (const auto& e : l.events) {
            lifecycle_events += e.type == trace::event_type::lifecycle ? 1 : 0;
        }
    }
    EXPECT_EQ(lifecycle_events, 1u);
    // Mint follows the same gate: no context while off.
    EXPECT_FALSE(mint(0).valid());
    set_enabled(true);
    const trace_context c = mint(3);
    EXPECT_TRUE(c.valid());
    EXPECT_EQ(c.trace_id >> 32, 4u); // (origin + 1) << 32 | counter
    set_enabled(false);
    trace::set_enabled(false);
    trace::collector::instance().reset();
}

} // namespace
} // namespace aurora::obs
