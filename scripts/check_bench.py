#!/usr/bin/env python3
"""Compare benchmark results against committed baselines (the CI bench-gate).

Result formats accepted (auto-detected):
  * the repo's own  {"bench": "...", "metrics": {"key": <number>, ...}}
    lines as emitted with HAM_AURORA_BENCH_JSON=1 (extra non-JSON lines and
    multiple JSON objects per file are tolerated);
  * google-benchmark --benchmark_format=json files ({"benchmarks": [...]}),
    using each entry's real_time.

Baseline format (bench/baselines/*.json):
  {"bench": "...",
   "metrics": {"key": {"value": V, "direction": "lower"|"higher",
                       "tolerance": T}, ...}}

A "lower"-is-better metric fails when result > V * T; a "higher"-is-better
metric fails when result < V / T. Baseline metrics missing from the result
fail (a silently vanished series must not pass the gate); result metrics
missing from the baseline are reported but don't fail, so new series can be
added before their baseline lands.

Exit codes: 0 all gates pass, 1 regression/missing metric, 2 usage error.

  --scale-result F   multiply every result value by F before comparing —
                     lets CI prove the gate actually fails on a synthetic
                     3x-slower result (and the self-test uses it too);
  --self-test        run the built-in unit checks (registered as a ctest).
"""

import argparse
import json
import sys


def parse_result_file(path):
    """Return {metric: value} from either supported result format."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()

    metrics = {}
    # Whole-file JSON first: google-benchmark or a single bench object.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "benchmarks" in doc:
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            metrics[entry["name"]] = float(entry["real_time"])
        return metrics
    if isinstance(doc, dict) and "metrics" in doc:
        return {k: float(v) for k, v in doc["metrics"].items()}

    # Otherwise: scan line-wise for HAM_AURORA_BENCH_JSON objects embedded in
    # other output.
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(obj, dict) and "metrics" in obj:
            for key, value in obj["metrics"].items():
                metrics[key] = float(value)
    if not metrics:
        raise ValueError(f"{path}: no benchmark metrics found")
    return metrics


def check(baseline, results, scale=1.0):
    """Return (failures, report_lines) for one baseline dict."""
    failures = []
    lines = []
    for key, spec in baseline["metrics"].items():
        ref = float(spec["value"])
        tol = float(spec.get("tolerance", 2.0))
        direction = spec.get("direction", "lower")
        if tol < 1.0:
            raise ValueError(f"{key}: tolerance must be >= 1.0, got {tol}")
        if direction not in ("lower", "higher"):
            raise ValueError(f"{key}: bad direction {direction!r}")

        if key not in results:
            failures.append(key)
            lines.append(f"  FAIL {key}: missing from results")
            continue
        value = results[key] * scale
        if direction == "lower":
            bound = ref * tol
            ok = value <= bound
            verdict = f"{value:.3f} <= {bound:.3f} (baseline {ref:.3f} x {tol})"
        else:
            bound = ref / tol
            ok = value >= bound
            verdict = f"{value:.3f} >= {bound:.3f} (baseline {ref:.3f} / {tol})"
        if not ok:
            failures.append(key)
        lines.append(f"  {'ok  ' if ok else 'FAIL'} {key}: {verdict}")

    for key in sorted(set(results) - set(baseline["metrics"])):
        lines.append(f"  note {key}: {results[key]:.3f} (no baseline)")
    return failures, lines


def self_test():
    baseline = {
        "bench": "t",
        "metrics": {
            "lat_ns": {"value": 100.0, "direction": "lower", "tolerance": 2.0},
            "bw_gib": {"value": 10.0, "direction": "higher", "tolerance": 2.0},
        },
    }
    # In-tolerance results pass.
    fails, _ = check(baseline, {"lat_ns": 150.0, "bw_gib": 8.0})
    assert fails == [], fails
    # Exactly at the bound passes; just past it fails.
    fails, _ = check(baseline, {"lat_ns": 200.0, "bw_gib": 5.0})
    assert fails == [], fails
    fails, _ = check(baseline, {"lat_ns": 200.1, "bw_gib": 10.0})
    assert fails == ["lat_ns"], fails
    fails, _ = check(baseline, {"lat_ns": 100.0, "bw_gib": 4.9})
    assert fails == ["bw_gib"], fails
    # A synthetic 3x scale must trip a 2x latency gate.
    fails, _ = check(baseline, {"lat_ns": 100.0, "bw_gib": 100.0}, scale=3.0)
    assert "lat_ns" in fails, fails
    # A missing baseline metric fails; an extra result metric does not.
    fails, _ = check(baseline, {"lat_ns": 100.0})
    assert fails == ["bw_gib"], fails
    fails, _ = check(baseline, {"lat_ns": 100.0, "bw_gib": 10.0, "new": 1.0})
    assert fails == [], fails
    print("check_bench.py self-test: all assertions passed")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="baseline JSON file")
    ap.add_argument("--result", help="benchmark result file")
    ap.add_argument("--scale-result", type=float, default=1.0,
                    help="multiply result values by F before comparing")
    ap.add_argument("--self-test", action="store_true",
                    help="run built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.result:
        ap.error("--baseline and --result are required (or use --self-test)")

    with open(args.baseline, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    results = parse_result_file(args.result)

    print(f"bench-gate: {baseline.get('bench', args.baseline)}"
          + (f" (results scaled x{args.scale_result})"
             if args.scale_result != 1.0 else ""))
    failures, lines = check(baseline, results, scale=args.scale_result)
    print("\n".join(lines))
    if failures:
        print(f"bench-gate FAILED: {len(failures)} metric(s) out of bounds: "
              + ", ".join(failures))
        return 1
    print("bench-gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
