#!/usr/bin/env python3
"""Compare benchmark results against committed baselines (the CI bench-gate).

Result formats accepted (auto-detected):
  * the repo's own  {"bench": "...", "metrics": {"key": <number>, ...}}
    lines as emitted with HAM_AURORA_BENCH_JSON=1 (extra non-JSON lines and
    multiple JSON objects per file are tolerated);
  * google-benchmark --benchmark_format=json files ({"benchmarks": [...]}),
    using each entry's real_time;
  * Prometheus text exposition as served by HAM_AURORA_METRICS_PORT or
    printed by `aurora_info --metrics`: counters/gauges become metrics keyed
    by name (summed over label sets), histograms additionally yield
    <name>:count, <name>:p50 and <name>:p99 derived from the cumulative
    buckets with the same interpolation aurora::metrics uses, so baselines
    can gate directly on scraped tail latency.

Baseline format (bench/baselines/*.json):
  {"bench": "...",
   "metrics": {"key": {"value": V, "direction": "lower"|"higher",
                       "tolerance": T}, ...}}

A "lower"-is-better metric fails when result > V * T; a "higher"-is-better
metric fails when result < V / T. Baseline metrics missing from the result
fail (a silently vanished series must not pass the gate); result metrics
missing from the baseline are reported but don't fail, so new series can be
added before their baseline lands.

Exit codes: 0 all gates pass, 1 regression/missing metric, 2 usage error.

  --scale-result F   multiply every result value by F before comparing —
                     lets CI prove the gate actually fails on a synthetic
                     3x-slower result (and the self-test uses it too);
  --self-test        run the built-in unit checks (registered as a ctest).
"""

import argparse
import json
import sys


def bucket_percentile(buckets, count, q):
    """Percentile from cumulative (le, count) pairs, matching the C++ side:
    each `le` is an inclusive upper bound, so a bucket spans prev_le+1..le and
    the estimate interpolates linearly on the rank inside that span."""
    if count <= 0:
        return 0.0
    rank = min(count, max(1.0, -(-(q / 100.0 * count) // 1)))  # ceil
    prev_le, prev_cum = 0.0, 0.0
    for le, cum in buckets:
        if cum >= rank and cum > prev_cum:
            lo = prev_le + 1.0
            hi = prev_le + 1.0 if le == float("inf") else le
            return lo + (hi - lo) * (rank - prev_cum) / (cum - prev_cum)
        if le != float("inf"):
            prev_le = le
        prev_cum = cum
    return prev_le


def parse_prometheus_text(text):
    """Return {metric: value} from a Prometheus text exposition document."""
    import re

    scalars = {}
    hists = {}  # name -> {"buckets": {le: cum}, "count": n}
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$')
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = sample_re.match(line)
        if m is None:
            continue
        name, labels, value = m.group(1), m.group(2) or "", float(m.group(3))
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            le_m = re.search(r'le="([^"]+)"', labels)
            if le_m is None:
                continue
            le = float("inf") if le_m.group(1) == "+Inf" else float(le_m.group(1))
            h = hists.setdefault(base, {"buckets": {}, "count": 0.0})
            h["buckets"][le] = h["buckets"].get(le, 0.0) + value
        elif name.endswith("_count"):
            base = name[: -len("_count")]
            h = hists.setdefault(base, {"buckets": {}, "count": 0.0})
            h["count"] += value
            scalars[name] = scalars.get(name, 0.0) + value
        else:
            scalars[name] = scalars.get(name, 0.0) + value

    metrics = dict(scalars)
    for base, h in hists.items():
        if not h["buckets"]:
            continue
        buckets = sorted(h["buckets"].items())
        metrics[f"{base}:count"] = h["count"]
        metrics[f"{base}:p50"] = bucket_percentile(buckets, h["count"], 50.0)
        metrics[f"{base}:p99"] = bucket_percentile(buckets, h["count"], 99.0)
    return metrics


def parse_result_file(path):
    """Return {metric: value} from any supported result format."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()

    # Prometheus exposition: recognisable by its TYPE comments.
    if "# TYPE " in text:
        metrics = parse_prometheus_text(text)
        if metrics:
            return metrics

    metrics = {}
    # Whole-file JSON first: google-benchmark or a single bench object.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "benchmarks" in doc:
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            metrics[entry["name"]] = float(entry["real_time"])
        return metrics
    if isinstance(doc, dict) and "metrics" in doc:
        return {k: float(v) for k, v in doc["metrics"].items()}

    # Otherwise: scan line-wise for HAM_AURORA_BENCH_JSON objects embedded in
    # other output.
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(obj, dict) and "metrics" in obj:
            for key, value in obj["metrics"].items():
                metrics[key] = float(value)
    if not metrics:
        raise ValueError(f"{path}: no benchmark metrics found")
    return metrics


def baseline_metrics(baseline, origin="baseline"):
    """Validate the baseline's shape, naming the offending key instead of
    letting a bare KeyError traceback escape (the CI log for a malformed
    baseline should say *which* file and key to fix)."""
    if not isinstance(baseline, dict):
        raise ValueError(f"{origin}: baseline must be a JSON object, "
                         f"got {type(baseline).__name__}")
    if "metrics" not in baseline:
        raise ValueError(f'{origin}: missing the "metrics" object '
                         f"(top-level keys: {sorted(baseline)})")
    metrics = baseline["metrics"]
    if not isinstance(metrics, dict):
        raise ValueError(f'{origin}: "metrics" must be an object, '
                         f"got {type(metrics).__name__}")
    for key, spec in metrics.items():
        if not isinstance(spec, dict):
            raise ValueError(
                f'{origin}: metric "{key}" must be an object like '
                f'{{"value": V, "direction": ..., "tolerance": ...}}, '
                f"got {spec!r}")
        if "value" not in spec:
            raise ValueError(f'{origin}: metric "{key}" is missing "value" '
                             f"(keys present: {sorted(spec)})")
    return metrics


def check(baseline, results, scale=1.0):
    """Return (failures, report_lines) for one baseline dict."""
    failures = []
    lines = []
    for key, spec in baseline_metrics(baseline).items():
        ref = float(spec["value"])
        tol = float(spec.get("tolerance", 2.0))
        direction = spec.get("direction", "lower")
        if tol < 1.0:
            raise ValueError(f"{key}: tolerance must be >= 1.0, got {tol}")
        if direction not in ("lower", "higher"):
            raise ValueError(f"{key}: bad direction {direction!r}")

        if key not in results:
            failures.append(key)
            lines.append(f"  FAIL {key}: missing from results")
            continue
        value = results[key] * scale
        if direction == "lower":
            bound = ref * tol
            ok = value <= bound
            verdict = f"{value:.3f} <= {bound:.3f} (baseline {ref:.3f} x {tol})"
        else:
            bound = ref / tol
            ok = value >= bound
            verdict = f"{value:.3f} >= {bound:.3f} (baseline {ref:.3f} / {tol})"
        if not ok:
            failures.append(key)
        lines.append(f"  {'ok  ' if ok else 'FAIL'} {key}: {verdict}")

    for key in sorted(set(results) - set(baseline["metrics"])):
        lines.append(f"  note {key}: {results[key]:.3f} (no baseline)")
    return failures, lines


def self_test():
    baseline = {
        "bench": "t",
        "metrics": {
            "lat_ns": {"value": 100.0, "direction": "lower", "tolerance": 2.0},
            "bw_gib": {"value": 10.0, "direction": "higher", "tolerance": 2.0},
        },
    }
    # In-tolerance results pass.
    fails, _ = check(baseline, {"lat_ns": 150.0, "bw_gib": 8.0})
    assert fails == [], fails
    # Exactly at the bound passes; just past it fails.
    fails, _ = check(baseline, {"lat_ns": 200.0, "bw_gib": 5.0})
    assert fails == [], fails
    fails, _ = check(baseline, {"lat_ns": 200.1, "bw_gib": 10.0})
    assert fails == ["lat_ns"], fails
    fails, _ = check(baseline, {"lat_ns": 100.0, "bw_gib": 4.9})
    assert fails == ["bw_gib"], fails
    # A synthetic 3x scale must trip a 2x latency gate.
    fails, _ = check(baseline, {"lat_ns": 100.0, "bw_gib": 100.0}, scale=3.0)
    assert "lat_ns" in fails, fails
    # A missing baseline metric fails; an extra result metric does not.
    fails, _ = check(baseline, {"lat_ns": 100.0})
    assert fails == ["bw_gib"], fails
    fails, _ = check(baseline, {"lat_ns": 100.0, "bw_gib": 10.0, "new": 1.0})
    assert fails == [], fails

    # Malformed baselines produce a named diagnostic, not a KeyError.
    for bad, fragment in [
        ({"bench": "t"}, '"metrics"'),
        ({"metrics": {"lat_ns": 5}}, '"lat_ns"'),
        ({"metrics": {"lat_ns": {"tolerance": 2.0}}}, '"value"'),
    ]:
        try:
            check(bad, {})
        except ValueError as e:
            assert fragment in str(e), (bad, e)
        else:
            raise AssertionError(f"malformed baseline accepted: {bad}")

    # Prometheus exposition parsing: scalars sum over label sets, histograms
    # yield :count/:p50/:p99 derived from the cumulative buckets.
    prom = "\n".join([
        '# HELP demo_total a counter',
        '# TYPE demo_total counter',
        'demo_total{node="1"} 3',
        'demo_total{node="2"} 4',
        '# TYPE demo_ns histogram',
        'demo_ns_bucket{le="1023"} 0',
        'demo_ns_bucket{le="2047"} 90',
        'demo_ns_bucket{le="4095"} 100',
        'demo_ns_bucket{le="+Inf"} 100',
        'demo_ns_sum 150000',
        'demo_ns_count 100',
    ])
    m = parse_prometheus_text(prom)
    assert m["demo_total"] == 7.0, m
    assert m["demo_ns:count"] == 100.0, m
    # rank(50) = 50 inside the 1024..2047 bucket holding entries 1..90:
    # 1024 + (2047 - 1024) * 50/90.
    assert abs(m["demo_ns:p50"] - (1024 + 1023 * 50.0 / 90.0)) < 1e-6, m
    # rank(99) = 99 inside the 2048..4095 bucket holding entries 91..100.
    assert abs(m["demo_ns:p99"] - (2048 + 2047 * 9.0 / 10.0)) < 1e-6, m
    # A bucket-only percentile never exceeds the highest finite bound.
    assert m["demo_ns:p99"] <= 4095.0, m
    print("check_bench.py self-test: all assertions passed")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="baseline JSON file")
    ap.add_argument("--result", help="benchmark result file")
    ap.add_argument("--scale-result", type=float, default=1.0,
                    help="multiply result values by F before comparing")
    ap.add_argument("--self-test", action="store_true",
                    help="run built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.result:
        ap.error("--baseline and --result are required (or use --self-test)")

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except json.JSONDecodeError as e:
        print(f"check_bench: {args.baseline} is not valid JSON: {e}",
              file=sys.stderr)
        return 2
    try:
        baseline_metrics(baseline, origin=args.baseline)
        results = parse_result_file(args.result)
    except ValueError as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 2

    bench = baseline.get("bench", args.baseline)
    print(f"bench-gate: {bench}"
          + (f" (results scaled x{args.scale_result})"
             if args.scale_result != 1.0 else ""))
    failures, lines = check(baseline, results, scale=args.scale_result)
    print("\n".join(lines))
    if failures:
        print(f"bench-gate FAILED: {len(failures)} metric(s) out of bounds: "
              + ", ".join(failures))
        return 1
    print("bench-gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
