#!/usr/bin/env python3
"""Validate a Prometheus text exposition (the CI metrics-smoke checker).

Reads exposition text from a file argument or stdin and enforces the format
contract of aurora::metrics::dump_prometheus():

  * every sample line parses as  name[{labels}] value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*);
  * a family's samples follow its # TYPE line, and the declared type matches
    the sample shapes (histogram families expose _bucket/_sum/_count);
  * histogram buckets are cumulative (monotonically non-decreasing in `le`
    order, per label set) and end with le="+Inf" equal to the _count sample;
  * counter values are non-negative.

Options:
  --require NAME   fail unless a family NAME is present (repeatable);
  --p99 HIST       print the p99 derived from HIST's cumulative buckets
                   (aurora::metrics interpolation: a bucket spans
                   prev_le+1 .. le) — fails if HIST is absent or empty;
  --self-test      run the built-in unit checks (registered as a ctest).

Exit codes: 0 valid, 1 contract violation / missing requirement, 2 usage.
"""

import argparse
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|[+-]?Inf|NaN))$')
TYPE_RE = re.compile(r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$')
HELP_RE = re.compile(r'^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$')

HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def base_family(name, types):
    """Map a sample name to its declared family (histograms expose
    `<fam>_bucket` etc.; `<fam>` itself carries the TYPE line)."""
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def strip_le(labels):
    parts = [p for p in re.findall(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"',
                                   labels or "")
             if not p.startswith('le="')]
    return ",".join(parts)


def parse_le(labels):
    m = re.search(r'le="([^"]*)"', labels or "")
    if m is None:
        return None
    return float("inf") if m.group(1) == "+Inf" else float(m.group(1))


def validate(text, require=()):
    """Return a list of violation strings (empty = valid)."""
    errors = []
    types = {}
    seen_families = set()
    # (family, labels-minus-le) -> list of (le, cum) in document order
    buckets = {}
    counts = {}

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            tm = TYPE_RE.match(line)
            if tm:
                name = tm.group(1)
                if name in seen_families:
                    errors.append(f"line {lineno}: TYPE for {name} after its "
                                  "samples")
                types[name] = tm.group(2)
                continue
            if HELP_RE.match(line) or line.startswith("# "):
                continue
            errors.append(f"line {lineno}: malformed comment: {line}")
            continue

        sm = SAMPLE_RE.match(line)
        if sm is None:
            errors.append(f"line {lineno}: unparsable sample: {line}")
            continue
        name, labels, value = sm.group(1), sm.group(2) or "", float(sm.group(3))
        fam = base_family(name, types)
        seen_families.add(fam)
        if fam not in types:
            errors.append(f"line {lineno}: sample {name} has no # TYPE line")
            continue

        kind = types[fam]
        if kind == "counter" and value < 0:
            errors.append(f"line {lineno}: counter {name} is negative")
        if kind == "histogram":
            key = (fam, strip_le(labels))
            if name.endswith("_bucket"):
                le = parse_le(labels)
                if le is None:
                    errors.append(f"line {lineno}: bucket without le label")
                    continue
                buckets.setdefault(key, []).append((le, value))
            elif name.endswith("_count"):
                counts[key] = value

    for key, series in buckets.items():
        fam, labels = key
        where = f"{fam}{{{labels}}}" if labels else fam
        prev = -1.0
        for le, cum in series:
            if cum < prev:
                errors.append(f"{where}: bucket le={le} not cumulative "
                              f"({cum} < {prev})")
            prev = cum
        if series[-1][0] != float("inf"):
            errors.append(f"{where}: buckets do not end with le=\"+Inf\"")
        if key not in counts:
            errors.append(f"{where}: histogram without _count sample")
        elif series[-1][1] != counts[key]:
            errors.append(f"{where}: le=\"+Inf\" ({series[-1][1]}) != _count "
                          f"({counts[key]})")

    for name in require:
        if name not in seen_families:
            errors.append(f"required family {name} is missing")
    return errors


def derive_p99(text, hist):
    """p99 across all label sets of `hist`, from its cumulative buckets."""
    merged = {}
    for line in text.splitlines():
        sm = SAMPLE_RE.match(line.strip())
        if sm is None or sm.group(1) != hist + "_bucket":
            continue
        le = parse_le(sm.group(2) or "")
        if le is not None:
            merged[le] = merged.get(le, 0.0) + float(sm.group(3))
    if not merged:
        return None
    series = sorted(merged.items())
    count = series[-1][1]
    if count <= 0:
        return None
    rank = min(count, max(1.0, -(-(0.99 * count) // 1)))  # ceil
    prev_le, prev_cum = 0.0, 0.0
    for le, cum in series:
        if cum >= rank and cum > prev_cum:
            lo = prev_le + 1.0
            hi = prev_le + 1.0 if le == float("inf") else le
            return lo + (hi - lo) * (rank - prev_cum) / (cum - prev_cum)
        if le != float("inf"):
            prev_le = le
        prev_cum = cum
    return prev_le


GOOD = """\
# HELP x_total things
# TYPE x_total counter
x_total{node="1"} 3
# TYPE x_ns histogram
x_ns_bucket{le="1023"} 0
x_ns_bucket{le="2047"} 90
x_ns_bucket{le="4095"} 100
x_ns_bucket{le="+Inf"} 100
x_ns_sum 150000
x_ns_count 100
"""


def self_test():
    assert validate(GOOD) == [], validate(GOOD)
    assert validate(GOOD, require=["x_total", "x_ns"]) == []
    errs = validate(GOOD, require=["absent_total"])
    assert any("absent_total" in e for e in errs), errs
    # Non-cumulative buckets, +Inf/_count mismatch, negative counter.
    errs = validate(GOOD.replace('x_ns_bucket{le="2047"} 90',
                                 'x_ns_bucket{le="2047"} 101'))
    assert any("not cumulative" in e for e in errs), errs
    errs = validate(GOOD.replace("x_ns_count 100", "x_ns_count 99"))
    assert any("!= _count" in e for e in errs), errs
    errs = validate(GOOD.replace('x_total{node="1"} 3',
                                 'x_total{node="1"} -3'))
    assert any("negative" in e for e in errs), errs
    errs = validate("y_total 1\n")
    assert any("no # TYPE" in e for e in errs), errs
    # p99 matches the aurora::metrics interpolation (see check_bench.py).
    p99 = derive_p99(GOOD, "x_ns")
    assert abs(p99 - (2048 + 2047 * 9.0 / 10.0)) < 1e-6, p99
    assert derive_p99(GOOD, "nope") is None
    print("check_prom.py self-test: all assertions passed")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", nargs="?", help="exposition file (default stdin)")
    ap.add_argument("--require", action="append", default=[],
                    help="fail unless this metric family is present")
    ap.add_argument("--p99", metavar="HIST",
                    help="print p99 derived from HIST's buckets")
    ap.add_argument("--self-test", action="store_true",
                    help="run built-in unit checks and exit")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return 0

    if args.file:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()

    errors = validate(text, require=args.require)
    for err in errors:
        print(f"check_prom: {err}", file=sys.stderr)

    if args.p99:
        p99 = derive_p99(text, args.p99)
        if p99 is None:
            print(f"check_prom: histogram {args.p99} absent or empty",
                  file=sys.stderr)
            return 1
        print(f"{args.p99} p99 = {p99:.3f}")

    if errors:
        print(f"check_prom: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    families = len({m.group(1) for m in map(TYPE_RE.match, text.splitlines())
                    if m})
    print(f"check_prom: exposition valid ({families} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
