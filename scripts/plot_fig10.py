#!/usr/bin/env python3
"""Plot the Fig. 10 reproduction from the bench's CSV output.

Usage:
    HAM_AURORA_CSV=1 build/bench/bench_fig10_bandwidth > fig10.csv.txt
    python3 scripts/plot_fig10.py fig10.csv.txt fig10.png

Recreates the paper's 2x2 panel layout (directions x size ranges) with
log-log axes. Requires matplotlib; degrades to a textual summary without it.
"""
import sys


def parse(path):
    """Extract the four panels' CSV tables from the bench output."""
    panels = {}
    current = None
    for line in open(path):
        line = line.strip()
        if line.startswith("Panel"):
            current = line
            panels[current] = []
        elif current and line.startswith("Size,"):
            continue
        elif current and "," in line and line[0].isdigit():
            cells = line.split(",")
            size_txt = cells[0]
            panels[current].append((parse_size(size_txt), *[
                float(c) if c != "-" else None for c in cells[1:]
            ]))
        elif current and not line:
            current = None
    return panels


def parse_size(txt):
    units = {"B": 1, "KiB": 1024, "MiB": 1024 ** 2, "GiB": 1024 ** 3}
    num, unit = txt.split()
    return float(num) * units[unit]


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "fig10.csv.txt"
    dst = sys.argv[2] if len(sys.argv) > 2 else "fig10.png"
    panels = parse(src)
    if not panels:
        print("no panel data found — run the bench with HAM_AURORA_CSV=1")
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; textual summary:")
        for name, rows in panels.items():
            print(f"  {name}: {len(rows)} points, "
                  f"peak VEO {max(r[1] for r in rows):.2f} GiB/s, "
                  f"peak DMA {max(r[2] for r in rows):.2f} GiB/s")
        return 0

    fig, axes = plt.subplots(2, 2, figsize=(11, 7), sharey="row")
    series = ["VEO Read/Write", "VE User DMA", "VE SHM/LHM"]
    for ax, (name, rows) in zip(axes.flat, panels.items()):
        xs = [r[0] for r in rows]
        for idx, label in enumerate(series, start=1):
            ys = [r[idx] for r in rows]
            pts = [(x, y) for x, y in zip(xs, ys) if y is not None]
            if pts:
                ax.plot(*zip(*pts), marker="o", markersize=3, label=label)
        ax.set_xscale("log", base=2)
        ax.set_yscale("log")
        ax.set_title(name.split("(")[0].strip(), fontsize=9)
        ax.set_xlabel("transfer size [B]")
        ax.set_ylabel("bandwidth [GiB/s]")
        ax.grid(True, which="both", alpha=0.3)
    axes[0][0].legend(fontsize=8)
    fig.suptitle("Fig. 10 reproduction — VH/VE copy bandwidth by method")
    fig.tight_layout()
    fig.savefig(dst, dpi=140)
    print(f"wrote {dst}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
